package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. Safe for concurrent use; instrument lookups are
// intended to happen once at construction time, observations on the hot
// path touch only atomics.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]any // key: label values joined by \xff
}

// childKey joins label values; values are padded/truncated to the family's
// label arity so a miscounted With never corrupts the exposition.
func (f *family) childKey(values []string) ([]string, string) {
	vals := make([]string, len(f.labels))
	copy(vals, values)
	return vals, strings.Join(vals, "\xff")
}

// child returns the metric for the given label values, creating it with
// mk on first use.
func (f *family) child(values []string, mk func() any) any {
	vals, key := f.childKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	if lc, ok := c.(interface{ setLabels([]string) }); ok {
		lc.setLabels(vals)
	}
	f.children[key] = c
	return c
}

// lookup returns (creating if needed) the family with the given name. A
// later registration under the same name returns the existing family
// regardless of help/type/labels — the first registration wins.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []string) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f = &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets, children: map[string]any{}}
	r.families[name] = f
	return f
}

// --- counters -----------------------------------------------------------------------

// Counter is a monotonically increasing count. All methods are nil-safe.
type Counter struct {
	labelValues []string
	v           atomic.Int64
}

func (c *Counter) setLabels(v []string) { c.labelValues = v }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, "counter", nil, labels)}
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// --- gauges -------------------------------------------------------------------------

// Gauge is a float64 value that can go up and down. All methods are
// nil-safe.
type Gauge struct {
	labelValues []string
	bits        atomic.Uint64
}

func (g *Gauge) setLabels(v []string) { g.labelValues = v }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, "gauge", nil, labels)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// --- histograms ---------------------------------------------------------------------

// Histogram counts observations into fixed buckets (upper-bound
// inclusive, Prometheus `le` semantics) and tracks their sum. All methods
// are nil-safe.
type Histogram struct {
	labelValues []string
	bounds      []float64
	counts      []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count       atomic.Int64
	sumBits     atomic.Uint64
	exemplar    atomic.Pointer[Exemplar]
}

// Exemplar correlates a single recent observation with the trace that
// produced it, so a latency histogram can point at a concrete
// /debug/traces entry explaining its tail. Exemplars are kept out of the
// text exposition (format 0.0.4 has no syntax for them) and surfaced via
// the accessor instead.
type Exemplar struct {
	Value   float64
	TraceID string
}

func (h *Histogram) setLabels(v []string) { h.labelValues = v }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, or +Inf overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one value and remembers traceID as the
// histogram's most recent exemplar (no exemplar is stored when traceID
// is empty).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID != "" {
		h.exemplar.Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// Exemplar returns the most recently stored exemplar, if any.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	if e := h.exemplar.Load(); e != nil {
		return *e, true
	}
	return Exemplar{}, false
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution from the bucket counts, interpolating linearly within the
// containing bucket. Observations in the +Inf overflow bucket are clamped
// to the largest finite bound. Returns 0 for an empty histogram — an
// estimate for dashboards and bench summaries, not an exact statistic.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, b := range h.bounds {
		n := float64(h.counts[i].Load())
		if cum+n >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if n == 0 {
				return b
			}
			frac := (rank - cum) / n
			return lo + (b-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a histogram family with the given
// bucket upper bounds (must be sorted ascending; nil means
// LatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, "histogram", buckets, labels)}
}

// Histogram registers (or finds) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any {
		return &Histogram{bounds: v.f.buckets, counts: make([]atomic.Int64, len(v.f.buckets)+1)}
	}).(*Histogram)
}

// Merged returns a snapshot histogram aggregating the bucket counts and
// sums of every child in the family — the distribution across all label
// values, e.g. a latency quantile over every language/mode at once. The
// result is detached: observing into it does not touch the registry.
func (v *HistogramVec) Merged() *Histogram {
	if v == nil {
		return nil
	}
	m := &Histogram{bounds: v.f.buckets, counts: make([]atomic.Int64, len(v.f.buckets)+1)}
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	var sum float64
	for _, c := range v.f.children {
		h, ok := c.(*Histogram)
		if !ok {
			continue
		}
		for i := range h.counts {
			m.counts[i].Add(h.counts[i].Load())
		}
		m.count.Add(h.count.Load())
		sum += h.Sum()
	}
	m.sumBits.Store(math.Float64bits(sum))
	return m
}

// --- exposition ---------------------------------------------------------------------

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families and children sorted by name for a
// stable scrape.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	for _, f := range r.sortedFamilies() {
		f.write(w)
	}
}

// WriteSummary renders a compact one-line-per-metric snapshot: counters
// and gauges as name{labels} value, histograms as count/sum/mean. Used by
// ecabench to cross-check bench figures against live counters.
func (r *Registry) WriteSummary(w io.Writer) {
	if r == nil {
		return
	}
	for _, f := range r.sortedFamilies() {
		for _, c := range f.sortedChildren() {
			id := f.name + formatLabels(f.labels, labelValuesOf(c))
			switch m := c.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s %d\n", id, m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s %s\n", id, formatFloat(m.Value()))
			case *Histogram:
				n, sum := m.Count(), m.Sum()
				mean := 0.0
				if n > 0 {
					mean = sum / float64(n)
				}
				fmt.Fprintf(w, "%s count=%d sum=%s mean=%s\n", id, n, formatFloat(sum), formatFloat(mean))
			}
		}
	}
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedChildren() []any {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]any, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.children[k])
	}
	f.mu.RUnlock()
	return out
}

func (f *family) write(w io.Writer) {
	children := f.sortedChildren()
	if len(children) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range children {
		vals := labelValuesOf(c)
		switch m := c.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(f.labels, vals), m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(f.labels, vals), formatFloat(m.Value()))
		case *Histogram:
			lnames := append(append([]string{}, f.labels...), "le")
			cum := int64(0)
			counts := m.BucketCounts()
			for i, b := range f.buckets {
				cum += counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					formatLabels(lnames, append(append([]string{}, vals...), formatFloat(b))), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				formatLabels(lnames, append(append([]string{}, vals...), "+Inf")), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(f.labels, vals), formatFloat(m.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(f.labels, vals), m.Count())
		}
	}
}

func labelValuesOf(c any) []string {
	switch m := c.(type) {
	case *Counter:
		return m.labelValues
	case *Gauge:
		return m.labelValues
	case *Histogram:
		return m.labelValues
	}
	return nil
}

func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
