package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerPopulatesGauges(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, time.Hour) // immediate sample only
	defer stop()

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, name := range []string{"go_goroutines", "go_heap_inuse_bytes", "go_heap_objects", "go_gc_pause_seconds_total", "go_gcs_total"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
	if g := r.Gauge("go_goroutines", ""); g.Value() < 1 {
		t.Errorf("go_goroutines = %v, want ≥ 1", g.Value())
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("runtime gauges break exposition lint: %v", err)
	}

	stop()
	stop() // idempotent
	if s := StartRuntimeSampler(nil, time.Second); s == nil {
		t.Error("nil-registry sampler should return a no-op stop")
	} else {
		s()
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{0.1, 0.2, 0.4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	// 10 observations in [0, 0.1), 10 in [0.1, 0.2).
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
		h.Observe(0.15)
	}
	if p50 := h.Quantile(0.5); p50 < 0.05 || p50 > 0.2 {
		t.Errorf("p50 = %v, want within [0.05, 0.2]", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 0.1 || p95 > 0.2 {
		t.Errorf("p95 = %v, want within (0.1, 0.2]", p95)
	}
	// Overflow bucket clamps to the largest finite bound.
	h.Observe(10)
	if p100 := h.Quantile(1); p100 != 0.4 {
		t.Errorf("p100 with overflow = %v, want 0.4", p100)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile should be 0")
	}
}
