package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLintExpositionAccepts(t *testing.T) {
	good := strings.Join([]string{
		`# HELP x_total A counter.`,
		`# TYPE x_total counter`,
		`x_total 7`,
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 0.42`,
		`lat_seconds_count 5`,
		`g{a="x",b="y y"} -1.5e3`,
		`ts_metric 1 1700000000000`,
		`nan_metric NaN`,
		`esc{v="a\\b\"c\nd"} 1`,
		``,
	}, "\n")
	if err := LintExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestLintExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":   `1bad 7`,
		"bad label name":    `m{1x="v"} 7`,
		"unquoted value":    `m{a=v} 7`,
		"unterminated":      `m{a="v} 7`,
		"duplicate label":   `m{a="1",a="2"} 7`,
		"raw quote":         `m{a="x"y"} 7`,
		"invalid escape":    `m{a="x\t"} 7`,
		"trailing slash":    `m{a="x\"} 7`,
		"no value":          `m{a="v"}`,
		"garbage value":     `m seven`,
		"bad timestamp":     `m 7 soon`,
		"unknown type":      "# TYPE m speedometer",
		"duplicate TYPE":    "# TYPE m counter\n# TYPE m gauge",
		"malformed TYPE":    "# TYPE m",
		"help bad name":     "# HELP 1bad text",
		"missing separator": `m{a="v" b="w"} 7`,
	}
	for name, in := range cases {
		if err := LintExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
}

// TestRegistryExpositionEscapingRegression is the label-escaping
// regression test: a registry fed hostile label values (quotes,
// backslashes, newlines) must emit an exposition every line of which is
// machine-parseable, with the hostile values escaped exactly as the
// format prescribes.
func TestRegistryExpositionEscapingRegression(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("hostile_total", `help with "quotes" and \slashes`, "v").
		With("quote\"backslash\\newline\nend").Inc()
	r.GaugeVec("hostile_gauge", "", "a", "b").With("plain", "").Set(2)
	r.HistogramVec("hostile_seconds", "", []float64{0.1}, "v").With(`x"y`).Observe(0.05)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	exposition := buf.String()

	if err := LintExposition(strings.NewReader(exposition)); err != nil {
		t.Fatalf("registry exposition fails lint: %v\n%s", err, exposition)
	}

	// Line-by-line: the hostile sample lines must carry the exact escape
	// sequences, and every line must be comment, blank, or name{...} value.
	wantLines := []string{
		`hostile_total{v="quote\"backslash\\newline\nend"} 1`,
		`hostile_gauge{a="plain",b=""} 2`,
		`hostile_seconds_bucket{v="x\"y",le="0.1"} 1`,
		`hostile_seconds_bucket{v="x\"y",le="+Inf"} 1`,
		`hostile_seconds_count{v="x\"y"} 1`,
	}
	for _, want := range wantLines {
		if !strings.Contains(exposition, want+"\n") {
			t.Errorf("exposition missing line %q\ngot:\n%s", want, exposition)
		}
	}
	for i, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.ContainsAny(line, "\r") || strings.Count(line, " ") < 1 {
			t.Errorf("line %d not of the form name value: %q", i+1, line)
		}
	}
}
