package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a parser and
// sample model for Prometheus text scrapes (format 0.0.4). The cluster
// layer uses it to build /cluster/metrics — each peer's /metrics is
// parsed, tagged with a node label and merged into one lint-clean
// exposition (naive concatenation would duplicate TYPE comments, which
// LintExposition rejects) — and the load tooling (ecaload, `ecactl
// cluster top`) uses it to delta histograms and compute quantiles from
// scrapes without a Prometheus client dependency.

// LabelPair is one name="value" pair on a sample, in exposition order.
type LabelPair struct {
	Name  string
	Value string
}

// Sample is a single exposition line: a sample name (including any
// _bucket/_sum/_count suffix), its labels and its value.
type Sample struct {
	Name   string
	Labels []LabelPair
	Value  float64
}

// Label returns the value of the named label and whether it is present.
func (s *Sample) Label(name string) (string, bool) {
	for _, lp := range s.Labels {
		if lp.Name == name {
			return lp.Value, true
		}
	}
	return "", false
}

// matches reports whether every want label is present with that exact
// value (subset match; extra labels on the sample are fine).
func (s *Sample) matches(want map[string]string) bool {
	for k, v := range want {
		got, ok := s.Label(k)
		if !ok || got != v {
			return false
		}
	}
	return true
}

// MetricFamily groups the samples of one metric name with its HELP/TYPE
// metadata. Type is empty for samples that appeared without a TYPE
// declaration.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Exposition is a parsed scrape: metric families in first-seen order.
type Exposition struct {
	Families []*MetricFamily

	byName map[string]*MetricFamily
}

// ParseExposition parses a Prometheus text exposition. It is as strict
// as LintExposition about names, quoting and escapes, so anything it
// accepts round-trips lint-clean through WritePrometheus. Optional
// sample timestamps are parsed and dropped.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{byName: map[string]*MetricFamily{}}
	typed := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := e.parseComment(line, typed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := e.parseSample(line, typed); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("exposition read: %w", err)
	}
	return e, nil
}

func (e *Exposition) family(name string) *MetricFamily {
	if f, ok := e.byName[name]; ok {
		return f
	}
	f := &MetricFamily{Name: name}
	e.byName[name] = f
	e.Families = append(e.Families, f)
	return f
}

func (e *Exposition) parseComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment, dropped
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
		f := e.family(fields[2])
		if len(fields) == 4 {
			if err := checkEscapes(fields[3], false); err != nil {
				return fmt.Errorf("HELP text for %s: %w", fields[2], err)
			}
			f.Help = unescapeText(fields[3])
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", fields[3], fields[2])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		typed[fields[2]] = fields[3]
		e.family(fields[2]).Type = fields[3]
	}
	return nil
}

func (e *Exposition) parseSample(line string, typed map[string]string) error {
	name, rest := splitName(line)
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name in %q", line)
	}
	s := Sample{Name: name}
	if strings.HasPrefix(rest, "{") {
		var err error
		s.Labels, rest, err = parseLabels(rest)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	parts := strings.Fields(rest)
	if len(parts) < 1 || len(parts) > 2 {
		return fmt.Errorf("%s: expected value [timestamp], got %q", name, rest)
	}
	v, err := parseSampleValue(parts[0])
	if err != nil {
		return fmt.Errorf("%s: unparseable sample value %q", name, parts[0])
	}
	if len(parts) == 2 {
		if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
			return fmt.Errorf("%s: bad timestamp %q", name, parts[1])
		}
	}
	s.Value = v
	fam := name
	if base, ok := baseFamily(name, typed); ok {
		fam = base
	}
	f := e.family(fam)
	f.Samples = append(f.Samples, s)
	return nil
}

// parseLabels consumes a {name="value",...} section, returning the
// decoded pairs and the rest of the line. Same grammar as lintLabels.
func parseLabels(s string) (pairs []LabelPair, rest string, err error) {
	s = s[1:] // consume '{'
	seen := map[string]bool{}
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return pairs, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label section")
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		if seen[lname] {
			return nil, "", fmt.Errorf("duplicate label %q", lname)
		}
		seen[lname] = true
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", lname)
		}
		val, remainder, ok := scanQuoted(s)
		if !ok {
			return nil, "", fmt.Errorf("label %s: unterminated quoted value", lname)
		}
		if err := checkEscapes(val, true); err != nil {
			return nil, "", fmt.Errorf("label %s: %w", lname, err)
		}
		pairs = append(pairs, LabelPair{Name: lname, Value: unescapeText(val)})
		s = strings.TrimLeft(remainder, " ")
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
		default:
			return nil, "", fmt.Errorf("label %s: expected , or } after value", lname)
		}
	}
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeText(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// AddLabel stamps every sample with an extra label (replacing any
// existing label of the same name). New labels are prepended so
// histogram `le` labels keep their conventional trailing position.
func (e *Exposition) AddLabel(name, value string) {
	if e == nil {
		return
	}
	for _, f := range e.Families {
		for i := range f.Samples {
			s := &f.Samples[i]
			replaced := false
			for j := range s.Labels {
				if s.Labels[j].Name == name {
					s.Labels[j].Value = value
					replaced = true
					break
				}
			}
			if !replaced {
				s.Labels = append([]LabelPair{{Name: name, Value: value}}, s.Labels...)
			}
		}
	}
}

// MergeExpositions combines scrapes into one exposition, unioning
// samples family-by-family. The first part to declare a family's
// HELP/TYPE wins; later conflicting declarations are dropped rather
// than duplicated, keeping the merge lint-clean. Callers are expected
// to have disambiguated same-name series first (e.g. via AddLabel).
func MergeExpositions(parts ...*Exposition) *Exposition {
	out := &Exposition{byName: map[string]*MetricFamily{}}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for _, f := range p.Families {
			m := out.family(f.Name)
			if m.Help == "" {
				m.Help = f.Help
			}
			if m.Type == "" {
				m.Type = f.Type
			}
			m.Samples = append(m.Samples, f.Samples...)
		}
	}
	return out
}

// WritePrometheus renders the exposition in text format 0.0.4, families
// sorted by name for a stable scrape. Families without samples are
// skipped (a HELP/TYPE comment with no series is pointless noise).
func (e *Exposition) WritePrometheus(w io.Writer) {
	if e == nil {
		return
	}
	fams := make([]*MetricFamily, len(e.Families))
	copy(fams, e.Families)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		if f.Type != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			names := make([]string, len(s.Labels))
			values := make([]string, len(s.Labels))
			for i, lp := range s.Labels {
				names[i] = lp.Name
				values[i] = lp.Value
			}
			fmt.Fprintf(w, "%s%s %s\n", s.Name, formatLabels(names, values), formatFloat(s.Value))
		}
	}
}

// Family returns the named family, or nil if absent.
func (e *Exposition) Family(name string) *MetricFamily {
	if e == nil {
		return nil
	}
	return e.byName[name]
}

// Value returns the value of the first sample with this exact name whose
// labels include every pair in labels (nil matches anything).
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	if e == nil {
		return 0, false
	}
	for _, f := range e.Families {
		for i := range f.Samples {
			s := &f.Samples[i]
			if s.Name == name && s.matches(labels) {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// Sum adds up every sample with this exact name whose labels include
// every pair in labels — e.g. the total of a counter across all its
// label values.
func (e *Exposition) Sum(name string, labels map[string]string) float64 {
	if e == nil {
		return 0
	}
	total := 0.0
	for _, f := range e.Families {
		for i := range f.Samples {
			s := &f.Samples[i]
			if s.Name == name && s.matches(labels) {
				total += s.Value
			}
		}
	}
	return total
}

// LabelValues returns the distinct values of a label across all
// samples, sorted — e.g. the node ids present in a federated scrape.
func (e *Exposition) LabelValues(label string) []string {
	if e == nil {
		return nil
	}
	seen := map[string]bool{}
	for _, f := range e.Families {
		for i := range f.Samples {
			if v, ok := f.Samples[i].Label(label); ok && !seen[v] {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// --- scraped histograms ---------------------------------------------------------------

// BucketDist is a histogram distribution reassembled from scraped
// _bucket/_sum/_count samples, aggregated across every matching series.
// It supports the two operations the load tooling needs: subtracting a
// baseline scrape (Sub) and estimating quantiles (Quantile).
type BucketDist struct {
	Bounds []float64 // ascending upper bounds; +Inf last when scraped
	Cum    []int64   // cumulative counts per bound
	Count  int64
	Sum    float64
}

// HistogramDist collects the distribution of the named histogram from
// the exposition, summing every series whose labels include the given
// pairs. Returns an empty (non-nil) distribution when nothing matches.
func (e *Exposition) HistogramDist(name string, labels map[string]string) *BucketDist {
	d := &BucketDist{}
	if e == nil {
		return d
	}
	byBound := map[float64]int64{}
	for _, f := range e.Families {
		for i := range f.Samples {
			s := &f.Samples[i]
			if !s.matches(labels) {
				continue
			}
			switch s.Name {
			case name + "_bucket":
				le, ok := s.Label("le")
				if !ok {
					continue
				}
				b, err := parseSampleValue(le)
				if err != nil {
					continue
				}
				byBound[b] += int64(s.Value)
			case name + "_sum":
				d.Sum += s.Value
			case name + "_count":
				d.Count += int64(s.Value)
			}
		}
	}
	d.Bounds = make([]float64, 0, len(byBound))
	for b := range byBound {
		d.Bounds = append(d.Bounds, b)
	}
	sort.Float64s(d.Bounds)
	d.Cum = make([]int64, len(d.Bounds))
	for i, b := range d.Bounds {
		d.Cum[i] = byBound[b]
	}
	return d
}

// Sub returns the distribution of observations made after prev was
// scraped (this minus prev, clamped at zero). If the bucket layouts
// differ the receiver is returned unchanged.
func (d *BucketDist) Sub(prev *BucketDist) *BucketDist {
	if d == nil {
		return nil
	}
	if prev == nil || len(prev.Bounds) == 0 {
		return d
	}
	if len(prev.Bounds) != len(d.Bounds) {
		return d
	}
	for i := range d.Bounds {
		if d.Bounds[i] != prev.Bounds[i] {
			return d
		}
	}
	out := &BucketDist{
		Bounds: append([]float64(nil), d.Bounds...),
		Cum:    make([]int64, len(d.Cum)),
		Count:  max64(0, d.Count-prev.Count),
		Sum:    math.Max(0, d.Sum-prev.Sum),
	}
	for i := range d.Cum {
		out.Cum[i] = max64(0, d.Cum[i]-prev.Cum[i])
	}
	return out
}

// Quantile estimates the q-quantile (q clamped to [0,1]) by linear
// interpolation within the containing bucket, mirroring
// Histogram.Quantile: overflow observations clamp to the largest finite
// bound, and an empty distribution yields 0.
func (d *BucketDist) Quantile(q float64) float64 {
	if d == nil || d.Count == 0 || len(d.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.Count)
	cum := 0.0
	prevCum := int64(0)
	topFinite := 0.0
	for _, b := range d.Bounds {
		if !math.IsInf(b, 1) {
			topFinite = b
		}
	}
	for i, b := range d.Bounds {
		n := float64(d.Cum[i] - prevCum)
		prevCum = d.Cum[i]
		if cum+n >= rank {
			if math.IsInf(b, 1) {
				return topFinite
			}
			lo := 0.0
			if i > 0 {
				lo = d.Bounds[i-1]
			}
			if n == 0 {
				return b
			}
			frac := (rank - cum) / n
			return lo + (b-lo)*frac
		}
		cum += n
	}
	return topFinite
}

// Mean returns Sum/Count, or 0 when empty.
func (d *BucketDist) Mean() float64 {
	if d == nil || d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
