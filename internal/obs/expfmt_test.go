package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// scrapeRegistry builds a small registry and returns its exposition text.
func scrapeRegistry(t *testing.T) string {
	t.Helper()
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs processed.").Add(7)
	r.CounterVec("errs_total", "Errors.", "kind").With(`we"ird\`).Add(2)
	r.Gauge("queue_depth", "Depth.").Set(3.5)
	h := r.HistogramVec("lat_seconds", "Latency.", []float64{0.1, 1}, "stage")
	h.With("admit").Observe(0.05)
	h.With("admit").Observe(0.5)
	h.With("act").Observe(5) // overflow bucket
	var b bytes.Buffer
	r.WritePrometheus(&b)
	return b.String()
}

func TestParseExpositionRoundTrip(t *testing.T) {
	text := scrapeRegistry(t)
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := e.Value("jobs_total", nil); !ok || v != 7 {
		t.Fatalf("jobs_total = %v,%v want 7,true", v, ok)
	}
	if v, ok := e.Value("errs_total", map[string]string{"kind": `we"ird\`}); !ok || v != 2 {
		t.Fatalf("escaped label lookup = %v,%v", v, ok)
	}
	if v, ok := e.Value("queue_depth", nil); !ok || v != 3.5 {
		t.Fatalf("queue_depth = %v,%v", v, ok)
	}
	f := e.Family("lat_seconds")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("lat_seconds family missing or untyped: %+v", f)
	}
	// Round-trip must stay lint-clean and preserve values.
	var out bytes.Buffer
	e.WritePrometheus(&out)
	if err := LintExposition(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("round-tripped exposition not lint-clean: %v", err)
	}
	e2, err := ParseExposition(&out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if v, ok := e2.Value("errs_total", map[string]string{"kind": `we"ird\`}); !ok || v != 2 {
		t.Fatalf("escaped label did not survive round trip: %v,%v", v, ok)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"1bad_name 3\n",
		"m{le=\"0.1} 3\n",
		"m not-a-number\n",
		"# TYPE m histogram\n# TYPE m histogram\nm_count 1\n",
		"m{x=\"a\",x=\"b\"} 1\n",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition accepted %q", bad)
		}
	}
}

func TestAddLabelAndMergeLintClean(t *testing.T) {
	a, err := ParseExposition(strings.NewReader(scrapeRegistry(t)))
	if err != nil {
		t.Fatalf("parse a: %v", err)
	}
	b, err := ParseExposition(strings.NewReader(scrapeRegistry(t)))
	if err != nil {
		t.Fatalf("parse b: %v", err)
	}
	a.AddLabel("node", "n1")
	b.AddLabel("node", "n2")
	merged := MergeExpositions(a, b)
	var out bytes.Buffer
	merged.WritePrometheus(&out)
	if err := LintExposition(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("merged exposition not lint-clean:\n%s\nerr: %v", out.String(), err)
	}
	nodes := merged.LabelValues("node")
	if len(nodes) != 2 || nodes[0] != "n1" || nodes[1] != "n2" {
		t.Fatalf("LabelValues(node) = %v", nodes)
	}
	if got := merged.Sum("jobs_total", nil); got != 14 {
		t.Fatalf("merged jobs_total sum = %v want 14", got)
	}
	if v, ok := merged.Value("jobs_total", map[string]string{"node": "n2"}); !ok || v != 7 {
		t.Fatalf("per-node value = %v,%v", v, ok)
	}
	// AddLabel must replace, not duplicate, an existing label.
	a.AddLabel("node", "n9")
	if v, ok := a.Value("jobs_total", map[string]string{"node": "n9"}); !ok || v != 7 {
		t.Fatalf("relabel: %v,%v", v, ok)
	}
	var relint bytes.Buffer
	a.WritePrometheus(&relint)
	if err := LintExposition(&relint); err != nil {
		t.Fatalf("relabelled exposition not lint-clean: %v", err)
	}
}

func TestHistogramDistQuantileAndSub(t *testing.T) {
	e, err := ParseExposition(strings.NewReader(scrapeRegistry(t)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	all := e.HistogramDist("lat_seconds", nil)
	if all.Count != 3 {
		t.Fatalf("count = %d want 3", all.Count)
	}
	if math.Abs(all.Sum-5.55) > 1e-9 {
		t.Fatalf("sum = %v want 5.55", all.Sum)
	}
	// Overflow observations clamp to the top finite bound.
	if p99 := all.Quantile(0.99); p99 != 1 {
		t.Fatalf("p99 = %v want clamp to 1", p99)
	}
	admit := e.HistogramDist("lat_seconds", map[string]string{"stage": "admit"})
	if admit.Count != 2 {
		t.Fatalf("admit count = %d want 2", admit.Count)
	}
	// Delta vs a baseline: same layout, counts subtract, never negative.
	delta := all.Sub(admit)
	if delta.Count != 1 || math.Abs(delta.Sum-5) > 1e-9 {
		t.Fatalf("delta = count %d sum %v", delta.Count, delta.Sum)
	}
	// Mismatched layouts leave the receiver untouched.
	other := &BucketDist{Bounds: []float64{9}, Cum: []int64{1}, Count: 1}
	if got := all.Sub(other); got.Count != all.Count {
		t.Fatalf("mismatched Sub changed the receiver: %+v", got)
	}
	empty := (&Exposition{}).HistogramDist("nope", nil)
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatalf("empty dist should yield zeros")
	}
}
