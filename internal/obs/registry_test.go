package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("requests_total", "test counter", "kind")
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve through the vec on every iteration too: the lookup
			// path must also be contention-safe.
			for i := 0; i < perWorker; i++ {
				vec.With("query").Inc()
				vec.With("action").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := vec.With("query").Value(); got != workers*perWorker {
		t.Errorf("query counter = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("action").Value(); got != 2*workers*perWorker {
		t.Errorf("action counter = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "t")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d after negative add, want 5", c.Value())
	}
}

func TestGaugeSetAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temperature", "t")
	g.Set(10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 10 {
		t.Errorf("gauge = %v, want 10", g.Value())
	}
}

// TestGaugeVecConcurrentSet models the breaker-state gauge: many
// goroutines racing Set on per-endpoint children, resolving through the
// vec each time. Every child must end on one of the written states.
func TestGaugeVecConcurrentSet(t *testing.T) {
	r := NewRegistry()
	vec := r.GaugeVec("breaker_state", "t", "endpoint")
	endpoints := []string{"http://a/", "http://b/", "http://c/"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				vec.With(endpoints[i%len(endpoints)]).Set(float64((w + i) % 3))
			}
		}(w)
	}
	wg.Wait()
	for _, ep := range endpoints {
		if got := vec.With(ep).Value(); got != 0 && got != 1 && got != 2 {
			t.Errorf("gauge{%s} = %v, want a written state (0, 1 or 2)", ep, got)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "t", []float64{0.1, 1, 10})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 5, 10, 100} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	want := []int64{2, 2, 2, 1} // ≤0.1: {0.05, 0.1}; ≤1: {0.5, 1}; ≤10: {5, 10}; +Inf: {100}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if sum := h.Sum(); sum < 116.64 || sum > 116.66 {
		t.Errorf("sum = %v, want 116.65", sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("lat", "t", []float64{1, 2}, "op").With("x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if sum := h.Sum(); sum != 12000 {
		t.Errorf("sum = %v, want 12000", sum)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("grh_requests_total", "GRH requests.", "kind").With("query").Add(3)
	r.Gauge("engine_rules", "Registered rules.").Set(2)
	h := r.Histogram("dispatch_seconds", "Dispatch latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP grh_requests_total GRH requests.",
		"# TYPE grh_requests_total counter",
		`grh_requests_total{kind="query"} 3`,
		"# TYPE engine_rules gauge",
		"engine_rules 2",
		"# TYPE dispatch_seconds histogram",
		`dispatch_seconds_bucket{le="0.5"} 1`,
		`dispatch_seconds_bucket{le="1"} 2`,
		`dispatch_seconds_bucket{le="+Inf"} 3`,
		"dispatch_seconds_sum 4",
		"dispatch_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscapingAndArity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "help with\nnewline", "a", "b")
	v.With(`x"y\z`).Inc() // one value short: missing label renders empty
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `c{a="x\"y\\z",b=""} 1`) {
		t.Errorf("bad label escaping:\n%s", out)
	}
	if !strings.Contains(out, `help with\nnewline`) {
		t.Errorf("bad help escaping:\n%s", out)
	}
}

func TestSameNameReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("shared_total", "h", "k").With("v")
	b := r.CounterVec("shared_total", "other help", "k").With("v")
	a.Inc()
	if b.Value() != 1 {
		t.Error("same-name vecs should share children")
	}
}

func TestNilSafety(t *testing.T) {
	var h *Hub
	reg := h.Metrics()
	if reg != nil {
		t.Fatal("nil hub should yield nil registry")
	}
	c := reg.CounterVec("x", "h", "l").With("v")
	c.Inc()
	c.Add(5)
	_ = c.Value()
	g := reg.Gauge("g", "h")
	g.Set(1)
	g.Add(1)
	hist := reg.HistogramVec("h", "h", nil, "l").With("v")
	hist.Observe(1)
	_ = hist.Count()
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	reg.WriteSummary(&sb)
	if sb.Len() != 0 {
		t.Error("nil registry should write nothing")
	}
	tr := h.Traces()
	inst := tr.Begin("r")
	inst.AddSpan(Span{Stage: "event"})
	inst.Finish("completed")
	if tr.Snapshot() != nil || tr.Recorded() != 0 {
		t.Error("nil recorder should record nothing")
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("svc_total", "h", "kind").With("query").Add(4)
	h := r.Histogram("lat_seconds", "h", []float64{1})
	h.Observe(2)
	h.Observe(4)
	var b strings.Builder
	r.WriteSummary(&b)
	out := b.String()
	if !strings.Contains(out, `svc_total{kind="query"} 4`) {
		t.Errorf("summary missing counter:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds count=2 sum=6 mean=3") {
		t.Errorf("summary missing histogram:\n%s", out)
	}
}

func TestHistogramVecMerged(t *testing.T) {
	r := NewRegistry()
	vec := r.HistogramVec("disp_seconds", "h", []float64{1, 2, 4}, "lang", "mode")
	vec.With("a", "aware").Observe(0.5)
	vec.With("a", "aware").Observe(1.5)
	vec.With("b", "cache").Observe(3)
	vec.With("b", "opaque").Observe(9) // +Inf overflow bucket

	m := vec.Merged()
	if got := m.Count(); got != 4 {
		t.Fatalf("merged count = %d, want 4", got)
	}
	if got := m.Sum(); got != 14 {
		t.Fatalf("merged sum = %v, want 14", got)
	}
	if got, want := m.BucketCounts(), []int64{1, 1, 1, 1}; len(got) != len(want) {
		t.Fatalf("merged buckets = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("merged buckets = %v, want %v", got, want)
			}
		}
	}
	if q := m.Quantile(0.5); q <= 0 || q > 2 {
		t.Errorf("merged p50 = %v, want within (0, 2]", q)
	}
	// Detached: observing into the merged snapshot must not touch the
	// registry's children.
	m.Observe(1)
	if got := vec.With("a", "aware").Count(); got != 2 {
		t.Errorf("registry histogram count = %d after snapshot observe, want 2", got)
	}
	// Nil-safety.
	var nilVec *HistogramVec
	if nilVec.Merged() != nil {
		t.Error("nil vec should merge to nil")
	}
}
