package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerJSONCarriesFields(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "json", slog.LevelInfo)
	lg.With(FieldTraceID, "rule#7", FieldRule, "rule").
		Info("step evaluated", FieldComponent, "query[1]", "tuples", 3)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	want := map[string]any{
		"msg":          "step evaluated",
		"level":        "INFO",
		FieldTraceID:   "rule#7",
		FieldRule:      "rule",
		FieldComponent: "query[1]",
	}
	for k, v := range want {
		if rec[k] != v {
			t.Errorf("record[%q] = %v, want %v", k, rec[k], v)
		}
	}
	if rec["tuples"] != float64(3) {
		t.Errorf("record[tuples] = %v, want 3", rec["tuples"])
	}
}

func TestLoggerTextFormatAndLevels(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "text", slog.LevelWarn)
	lg.Debug("hidden")
	lg.Info("hidden too")
	lg.Warn("kept", FieldEndpoint, "http://svc")
	lg.Error("kept too")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("below-level records leaked:\n%s", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "endpoint=http://svc") {
		t.Errorf("missing warn record:\n%s", out)
	}
	if !strings.Contains(out, "kept too") {
		t.Errorf("missing error record:\n%s", out)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var lg *Logger
	lg.Debug("x")
	lg.Info("x")
	lg.Warn("x")
	lg.Error("x", "k", "v")
	if got := lg.With("k", "v"); got != nil {
		t.Errorf("nil.With = %v, want nil", got)
	}
	if lg.Slog() != nil {
		t.Error("nil.Slog() should be nil")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("shouting"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
