package ontology

import (
	"fmt"
	"io"

	"repro/internal/grh"
	"repro/internal/rdf"
	"repro/internal/ruleml"
)

// Descriptors reconstructs GRH service descriptors from the language
// resources described in an RDF graph — the paper's "the language
// descriptions (as resource descriptions) provide pointers to appropriate
// Web Services". Only languages whose service records an endpoint are
// returned (in-process implementations cannot be minted from RDF).
func Descriptors(g *rdf.Graph) []grh.Descriptor {
	typ := rdf.NewIRI(rdf.RDFType)
	label := rdf.NewIRI(rdf.RDFSLabel)
	familyKinds := []struct {
		class rdf.Term
		kind  ruleml.ComponentKind
	}{
		{ClassEventLanguage, ruleml.EventComponent},
		{ClassQueryLanguage, ruleml.QueryComponent},
		{ClassTestLanguage, ruleml.TestComponent},
		{ClassActionLanguage, ruleml.ActionComponent},
	}
	// Collect per-language kind sets via the subclass closures.
	kindsByLang := map[rdf.Term][]ruleml.ComponentKind{}
	for _, fk := range familyKinds {
		closure := g.SubClassClosure(fk.class)
		for cls := range closure {
			for _, t := range g.Match(nil, &typ, &cls) {
				kindsByLang[t.S] = append(kindsByLang[t.S], fk.kind)
			}
		}
	}
	var out []grh.Descriptor
	for lang, kinds := range kindsByLang {
		if lang.Kind != rdf.IRI {
			continue
		}
		d := grh.Descriptor{Language: lang.Value, Kinds: dedupeKinds(kinds)}
		for _, t := range g.Match(&lang, &label, nil) {
			d.Name = t.O.Value
		}
		for _, t := range g.Match(&lang, &PropImplementedBy, nil) {
			svc := t.O
			for _, e := range g.Match(&svc, &PropEndpoint, nil) {
				d.Endpoint = e.O.Value
			}
			for _, a := range g.Match(&svc, &PropFrameworkAware, nil) {
				d.FrameworkAware = a.O.Value == "true" || a.O.Value == "1"
			}
		}
		if d.Endpoint == "" {
			continue
		}
		out = append(out, d)
	}
	return out
}

func dedupeKinds(ks []ruleml.ComponentKind) []ruleml.ComponentKind {
	seen := map[ruleml.ComponentKind]bool{}
	var out []ruleml.ComponentKind
	for _, k := range ks {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// RegisterFromGraph registers every endpoint-bearing language description
// of the graph in a GRH, returning the number registered.
func RegisterFromGraph(reg *grh.GRH, g *rdf.Graph) (int, error) {
	ds := Descriptors(g)
	for _, d := range ds {
		if err := reg.Register(d); err != nil {
			return 0, err
		}
	}
	return len(ds), nil
}

// RegisterFromTurtle reads language descriptions in Turtle (the on-disk
// registry format of cmd/ecad's -registry flag) and registers them.
func RegisterFromTurtle(reg *grh.GRH, r io.Reader) (int, error) {
	triples, err := rdf.ParseTurtle(r)
	if err != nil {
		return 0, fmt.Errorf("ontology: registry: %w", err)
	}
	g := Base()
	g.AddAll(triples)
	return RegisterFromGraph(reg, g)
}
