// Package ontology models Figures 1 and 2 of the paper: rules and their
// components are objects of the Semantic Web, every component is associated
// with its language (a resource identified by a URI), and languages form a
// hierarchy of families (ECA > event/query/test/action languages >
// application-domain vocabularies) with pointers to the Web Services
// implementing them.
//
// The model lives in an RDF graph (internal/rdf), so it can be queried with
// basic graph patterns, serialized as Turtle, and checked: Validate flags
// rules whose components use a language outside the component's family.
package ontology

import (
	"fmt"

	"repro/internal/grh"
	"repro/internal/rdf"
	"repro/internal/ruleml"
)

// NS is the ECA ontology namespace.
const NS = "http://www.semwebtech.org/ontology/2006/eca#"

// RulesNS is the namespace rule and component instances are minted in.
const RulesNS = "http://www.semwebtech.org/rules/"

// Class IRIs (Fig. 1 and Fig. 2).
var (
	ClassRule              = rdf.NewIRI(NS + "Rule")
	ClassEventComponent    = rdf.NewIRI(NS + "EventComponent")
	ClassQueryComponent    = rdf.NewIRI(NS + "QueryComponent")
	ClassTestComponent     = rdf.NewIRI(NS + "TestComponent")
	ClassActionComponent   = rdf.NewIRI(NS + "ActionComponent")
	ClassLanguage          = rdf.NewIRI(NS + "Language")
	ClassComponentLanguage = rdf.NewIRI(NS + "ComponentLanguage")
	ClassEventLanguage     = rdf.NewIRI(NS + "EventLanguage")
	ClassQueryLanguage     = rdf.NewIRI(NS + "QueryLanguage")
	ClassTestLanguage      = rdf.NewIRI(NS + "TestLanguage")
	ClassActionLanguage    = rdf.NewIRI(NS + "ActionLanguage")
	ClassService           = rdf.NewIRI(NS + "Service")
)

// Property IRIs.
var (
	PropHasComponent   = rdf.NewIRI(NS + "hasComponent")
	PropUsesLanguage   = rdf.NewIRI(NS + "usesLanguage")
	PropBindsVariable  = rdf.NewIRI(NS + "bindsVariable")
	PropImplementedBy  = rdf.NewIRI(NS + "implementedBy")
	PropEndpoint       = rdf.NewIRI(NS + "endpoint")
	PropFrameworkAware = rdf.NewIRI(NS + "frameworkAware")
	PropOrder          = rdf.NewIRI(NS + "order")
)

// componentClass maps rule component kinds to their ontology class and the
// language family legal for them.
var componentClass = map[ruleml.ComponentKind]struct{ comp, lang rdf.Term }{
	ruleml.EventComponent:  {ClassEventComponent, ClassEventLanguage},
	ruleml.QueryComponent:  {ClassQueryComponent, ClassQueryLanguage},
	ruleml.TestComponent:   {ClassTestComponent, ClassTestLanguage},
	ruleml.ActionComponent: {ClassActionComponent, ClassActionLanguage},
}

// Base returns the language-family hierarchy of Fig. 2 as an RDF graph:
// the four component-language families below ComponentLanguage below
// Language.
func Base() *rdf.Graph {
	g := rdf.NewGraph()
	sub := rdf.NewIRI(rdf.RDFSSubClassOf)
	for _, family := range []rdf.Term{ClassEventLanguage, ClassQueryLanguage, ClassTestLanguage, ClassActionLanguage} {
		g.Add(rdf.Triple{S: family, P: sub, O: ClassComponentLanguage})
	}
	g.Add(rdf.Triple{S: ClassComponentLanguage, P: sub, O: ClassLanguage})
	for _, comp := range []rdf.Term{ClassEventComponent, ClassQueryComponent, ClassTestComponent, ClassActionComponent} {
		g.Add(rdf.Triple{S: comp, P: sub, O: rdf.NewIRI(NS + "Component")})
	}
	return g
}

// DescribeLanguage records a language resource and its implementing
// service (the lower half of Fig. 1), classified into the family for the
// component kinds the service accepts.
func DescribeLanguage(g *rdf.Graph, d grh.Descriptor) {
	lang := rdf.NewIRI(d.Language)
	typ := rdf.NewIRI(rdf.RDFType)
	kinds := d.Kinds
	if len(kinds) == 0 {
		kinds = []ruleml.ComponentKind{ruleml.EventComponent, ruleml.QueryComponent, ruleml.TestComponent, ruleml.ActionComponent}
	}
	for _, k := range kinds {
		g.Add(rdf.Triple{S: lang, P: typ, O: componentClass[k].lang})
	}
	if d.Name != "" {
		g.Add(rdf.Triple{S: lang, P: rdf.NewIRI(rdf.RDFSLabel), O: rdf.NewLiteral(d.Name)})
	}
	svc := rdf.NewIRI(d.Language + "#service")
	g.Add(rdf.Triple{S: lang, P: PropImplementedBy, O: svc})
	g.Add(rdf.Triple{S: svc, P: typ, O: ClassService})
	if d.Endpoint != "" {
		g.Add(rdf.Triple{S: svc, P: PropEndpoint, O: rdf.NewLiteral(d.Endpoint)})
	}
	aware := "false"
	if d.FrameworkAware {
		aware = "true"
	}
	g.Add(rdf.Triple{S: svc, P: PropFrameworkAware, O: rdf.NewTypedLiteral(aware, rdf.XSDNS+"boolean")})
}

// DescribeRegistry records every language registered in a GRH.
func DescribeRegistry(g *rdf.Graph, reg *grh.GRH) {
	for _, lang := range reg.Languages() {
		if d, ok := reg.Lookup(lang); ok {
			DescribeLanguage(g, *d)
		}
	}
}

// RuleIRI returns the resource IRI minted for a rule id.
func RuleIRI(ruleID string) rdf.Term { return rdf.NewIRI(RulesNS + ruleID) }

// ComponentIRI returns the resource IRI minted for a component of a rule.
func ComponentIRI(ruleID, componentID string) rdf.Term {
	return rdf.NewIRI(RulesNS + ruleID + "#" + componentID)
}

// DescribeRule records a parsed rule as resources per the upper half of
// Fig. 1: the rule, its components with evaluation order, each component's
// language association and bound variable.
func DescribeRule(g *rdf.Graph, r *ruleml.Rule) rdf.Term {
	typ := rdf.NewIRI(rdf.RDFType)
	ruleRes := RuleIRI(r.ID)
	g.Add(rdf.Triple{S: ruleRes, P: typ, O: ClassRule})
	for i, c := range r.Components() {
		cRes := ComponentIRI(r.ID, c.ID)
		g.Add(rdf.Triple{S: ruleRes, P: PropHasComponent, O: cRes})
		g.Add(rdf.Triple{S: cRes, P: typ, O: componentClass[c.Kind].comp})
		g.Add(rdf.Triple{S: cRes, P: PropOrder, O: rdf.NewTypedLiteral(fmt.Sprint(i), rdf.XSDNS+"integer")})
		if c.Language != "" {
			g.Add(rdf.Triple{S: cRes, P: PropUsesLanguage, O: rdf.NewIRI(c.Language)})
		}
		if c.Variable != "" {
			g.Add(rdf.Triple{S: cRes, P: PropBindsVariable, O: rdf.NewLiteral(c.Variable)})
		}
	}
	return ruleRes
}

// Validate checks a described rule against the ontology: every component's
// language must be declared (rdf:type, possibly via rdfs:subClassOf) in
// the family legal for the component kind. Components without a language
// association (bare domain patterns handled by registry defaults) pass.
func Validate(g *rdf.Graph, ruleID string) error {
	typ := rdf.NewIRI(rdf.RDFType)
	ruleRes := RuleIRI(ruleID)
	comps := g.Match(&ruleRes, &PropHasComponent, nil)
	if len(comps) == 0 {
		return fmt.Errorf("ontology: rule %s has no described components", ruleID)
	}
	for _, ct := range comps {
		comp := ct.O
		kinds := g.Match(&comp, &typ, nil)
		var family rdf.Term
		for _, kt := range kinds {
			for _, cc := range componentClass {
				if kt.O == cc.comp {
					family = cc.lang
				}
			}
		}
		if family == (rdf.Term{}) {
			return fmt.Errorf("ontology: component %s has no component class", comp)
		}
		langs := g.Match(&comp, &PropUsesLanguage, nil)
		for _, lt := range langs {
			if isInFamily(g, lt.O, family) {
				continue
			}
			// Per Fig. 2, application domains contribute atomic events and
			// atomic actions directly: a namespace with no language
			// declaration at all is read as a domain vocabulary, legal for
			// event and action components (the registry defaults — atomic
			// matcher, action executor — handle them).
			typIRI := rdf.NewIRI(rdf.RDFType)
			langO := lt.O
			undeclared := len(g.Match(&langO, &typIRI, nil)) == 0
			if undeclared && (family == ClassEventLanguage || family == ClassActionLanguage) {
				continue
			}
			return fmt.Errorf("ontology: component %s uses %s, which is not a declared %s",
				comp.Value, lt.O.Value, family.Value[len(NS):])
		}
	}
	return nil
}

// isInFamily reports whether lang has rdf:type family, directly or through
// a declared subclass of family.
func isInFamily(g *rdf.Graph, lang, family rdf.Term) bool {
	typ := rdf.NewIRI(rdf.RDFType)
	closure := g.SubClassClosure(family)
	for _, t := range g.Match(&lang, &typ, nil) {
		if closure[t.O] {
			return true
		}
	}
	return false
}

// LanguagesInFamily lists the language IRIs declared in a family, via the
// subclass closure — the Fig. 2 hierarchy walk.
func LanguagesInFamily(g *rdf.Graph, family rdf.Term) []rdf.Term {
	typ := rdf.NewIRI(rdf.RDFType)
	closure := g.SubClassClosure(family)
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	for cls := range closure {
		for _, t := range g.Match(nil, &typ, &cls) {
			if !seen[t.S] {
				seen[t.S] = true
				out = append(out, t.S)
			}
		}
	}
	return out
}

// ServiceEndpoint resolves the endpoint recorded for a language's service.
func ServiceEndpoint(g *rdf.Graph, language string) (string, bool) {
	lang := rdf.NewIRI(language)
	for _, t := range g.Match(&lang, &PropImplementedBy, nil) {
		svc := t.O
		for _, e := range g.Match(&svc, &PropEndpoint, nil) {
			return e.O.Value, true
		}
	}
	return "", false
}
