package ontology

import (
	"strings"
	"testing"

	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/rdf"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/snoop"
	"repro/internal/system"
)

func wiredGraph(t *testing.T) (*rdf.Graph, *system.System) {
	t.Helper()
	sys, err := system.NewLocal(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := Base()
	DescribeRegistry(g, sys.GRH)
	return g, sys
}

// TestFig2Hierarchy checks the language-family hierarchy.
func TestFig2Hierarchy(t *testing.T) {
	g, _ := wiredGraph(t)
	// All four families are subclasses of ComponentLanguage.
	closure := g.SubClassClosure(ClassComponentLanguage)
	for _, fam := range []rdf.Term{ClassEventLanguage, ClassQueryLanguage, ClassTestLanguage, ClassActionLanguage} {
		if !closure[fam] {
			t.Errorf("%v not in ComponentLanguage closure", fam)
		}
	}
	// SNOOP and the matcher are event languages; XQuery and Datalog are
	// query languages.
	evs := LanguagesInFamily(g, ClassEventLanguage)
	if !containsIRI(evs, snoop.NS) || !containsIRI(evs, services.MatcherNS) {
		t.Errorf("event languages = %v", evs)
	}
	qs := LanguagesInFamily(g, ClassQueryLanguage)
	if !containsIRI(qs, services.XQueryNS) || !containsIRI(qs, services.DatalogNS) {
		t.Errorf("query languages = %v", qs)
	}
	// Walking from the top of Fig. 2 finds every component language.
	all := LanguagesInFamily(g, ClassLanguage)
	if len(all) < 6 {
		t.Errorf("all languages = %d: %v", len(all), all)
	}
}

func containsIRI(ts []rdf.Term, iri string) bool {
	for _, t := range ts {
		if t.Kind == rdf.IRI && t.Value == iri {
			return true
		}
	}
	return false
}

// TestFig1RuleDescription models the sample rule as resources and
// validates it against the ontology.
func TestFig1RuleDescription(t *testing.T) {
	g, _ := wiredGraph(t)
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `"
	    xmlns:t="http://t/" xmlns:xq="` + services.XQueryNS + `" id="fig1">
	  <eca:event><t:booking person="$P"/></eca:event>
	  <eca:variable name="Car">
	    <eca:query><xq:query>for $c in doc('d')//car[@p=$P] return $c</xq:query></eca:query>
	  </eca:variable>
	  <eca:test>$Car != ''</eca:test>
	  <eca:action><t:inform p="$P"/></eca:action>
	</eca:rule>`)
	res := DescribeRule(g, rule)
	typ := rdf.NewIRI(rdf.RDFType)
	if got := g.Match(&res, &typ, &ClassRule); len(got) != 1 {
		t.Fatal("rule resource missing")
	}
	comps := g.Match(&res, &PropHasComponent, nil)
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	// The query component is associated with the XQuery language resource.
	qComp := ComponentIRI("fig1", "query[1]")
	langs := g.Match(&qComp, &PropUsesLanguage, nil)
	if len(langs) != 1 || langs[0].O.Value != services.XQueryNS {
		t.Errorf("query language = %v", langs)
	}
	// The bound variable is recorded.
	vars := g.Match(&qComp, &PropBindsVariable, nil)
	if len(vars) != 1 || vars[0].O.Value != "Car" {
		t.Errorf("bound variable = %v", vars)
	}
	if err := Validate(g, "fig1"); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestValidateRejectsFamilyMismatch: a rule whose query component uses an
// event language fails ontology validation.
func TestValidateRejectsFamilyMismatch(t *testing.T) {
	g, _ := wiredGraph(t)
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `"
	    xmlns:t="http://t/" xmlns:snoop="` + snoop.NS + `" id="mismatch">
	  <eca:event><t:e/></eca:event>
	  <eca:query binds="X"><snoop:seq>bogus</snoop:seq></eca:query>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`)
	DescribeRule(g, rule)
	err := Validate(g, "mismatch")
	if err == nil || !strings.Contains(err.Error(), "QueryLanguage") {
		t.Fatalf("expected family mismatch, got %v", err)
	}
}

// TestValidateRejectsUndeclaredQueryLanguage: a completely unknown
// namespace is tolerated as a domain vocabulary on events and actions, but
// not on query components.
func TestValidateRejectsUndeclaredQueryLanguage(t *testing.T) {
	g, _ := wiredGraph(t)
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `"
	    xmlns:t="http://t/" xmlns:my="http://mystery/" id="undeclared">
	  <eca:event><t:e/></eca:event>
	  <eca:query binds="X"><my:q>?</my:q></eca:query>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`)
	DescribeRule(g, rule)
	if err := Validate(g, "undeclared"); err == nil {
		t.Fatal("undeclared query language should fail validation")
	}
}

func TestValidateUnknownRule(t *testing.T) {
	g, _ := wiredGraph(t)
	if err := Validate(g, "ghost"); err == nil {
		t.Error("undescribed rule should fail validation")
	}
}

func TestServiceEndpoint(t *testing.T) {
	g := Base()
	DescribeLanguage(g, grh.Descriptor{
		Language:       "http://lang/x",
		Name:           "X language",
		Kinds:          []ruleml.ComponentKind{ruleml.QueryComponent},
		FrameworkAware: true,
		Endpoint:       "http://host:1234/x",
	})
	ep, ok := ServiceEndpoint(g, "http://lang/x")
	if !ok || ep != "http://host:1234/x" {
		t.Errorf("endpoint = %q, %v", ep, ok)
	}
	if _, ok := ServiceEndpoint(g, "http://lang/none"); ok {
		t.Error("unknown language should have no endpoint")
	}
}

// TestTurtleExport: the description round-trips through Turtle.
func TestTurtleExport(t *testing.T) {
	g, _ := wiredGraph(t)
	rule := ruleml.MustParse(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="http://t/" id="ttl">
	  <eca:event><t:e/></eca:event>
	  <eca:action><t:a/></eca:action>
	</eca:rule>`)
	DescribeRule(g, rule)
	var b strings.Builder
	if err := rdf.WriteTurtle(&b, g.Triples(), map[string]string{"eca": NS, "rules": RulesNS}); err != nil {
		t.Fatal(err)
	}
	ts, err := rdf.ParseTurtleString(b.String())
	if err != nil {
		t.Fatalf("turtle export does not reparse: %v", err)
	}
	if len(ts) != g.Len() {
		t.Errorf("round trip: %d triples, want %d", len(ts), g.Len())
	}
}
