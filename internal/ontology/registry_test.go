package ontology

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bindings"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/rdf"
	"repro/internal/ruleml"
	"repro/internal/xmltree"
)

// TestRegistryRoundTrip: describe a registry as RDF, rebuild descriptors
// from the graph, and verify the service pointers survive.
func TestRegistryRoundTrip(t *testing.T) {
	g := Base()
	orig := []grh.Descriptor{
		{
			Language: "http://lang/a", Name: "A service",
			Kinds:          []ruleml.ComponentKind{ruleml.QueryComponent},
			FrameworkAware: true, Endpoint: "http://host/a",
		},
		{
			Language: "http://lang/b", Name: "B detector",
			Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
			FrameworkAware: false, Endpoint: "http://host/b",
		},
	}
	for _, d := range orig {
		DescribeLanguage(g, d)
	}
	got := Descriptors(g)
	if len(got) != 2 {
		t.Fatalf("descriptors = %d: %+v", len(got), got)
	}
	byLang := map[string]grh.Descriptor{}
	for _, d := range got {
		byLang[d.Language] = d
	}
	a := byLang["http://lang/a"]
	if a.Name != "A service" || a.Endpoint != "http://host/a" || !a.FrameworkAware {
		t.Errorf("a = %+v", a)
	}
	if len(a.Kinds) != 1 || a.Kinds[0] != ruleml.QueryComponent {
		t.Errorf("a kinds = %v", a.Kinds)
	}
	b := byLang["http://lang/b"]
	if b.FrameworkAware {
		t.Errorf("b should not be framework aware")
	}
}

// TestRegisterFromTurtle: a Turtle registry file drives live dispatch.
func TestRegisterFromTurtle(t *testing.T) {
	// A trivial framework-aware echo service.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc, _ := xmltree.Parse(r.Body)
		req, err := protocol.DecodeRequest(doc)
		if err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		fmt.Fprint(w, protocol.EncodeAnswers(protocol.NewAnswer(req.RuleID, req.Component, req.Bindings)).String())
	}))
	defer srv.Close()

	ttl := `
@prefix eca: <` + NS + `> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
<http://lang/echo> a eca:QueryLanguage ;
    rdfs:label "echo service" ;
    eca:implementedBy <http://lang/echo#service> .
<http://lang/echo#service> a eca:Service ;
    eca:endpoint "` + srv.URL + `" ;
    eca:frameworkAware true .
`
	reg := grh.New()
	n, err := RegisterFromTurtle(reg, strings.NewReader(ttl))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("registered %d", n)
	}
	a, err := reg.Dispatch(protocol.Query, grh.Component{
		Rule: "r",
		Comp: ruleml.Component{
			Kind: ruleml.QueryComponent, ID: "query[1]",
			Language:   "http://lang/echo",
			Expression: xmltree.NewElement("http://lang/echo", "q"),
		},
		Bindings: bindings.NewRelation(bindings.MustTuple("X", bindings.Str("1"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 || a.Rows[0].Tuple["X"].AsString() != "1" {
		t.Fatalf("answer = %+v", a)
	}
}

func TestRegisterFromTurtleErrors(t *testing.T) {
	reg := grh.New()
	if _, err := RegisterFromTurtle(reg, strings.NewReader("@prefix broken")); err == nil {
		t.Error("broken turtle should fail")
	}
}

// TestDescriptorsSkipEndpointless: local-only descriptions are not minted.
func TestDescriptorsSkipEndpointless(t *testing.T) {
	g := Base()
	DescribeLanguage(g, grh.Descriptor{
		Language: "http://lang/local",
		Kinds:    []ruleml.ComponentKind{ruleml.QueryComponent},
	})
	if ds := Descriptors(g); len(ds) != 0 {
		t.Errorf("endpointless descriptors = %+v", ds)
	}
}

// TestDescriptorsThroughSubclass: a language typed with a *subclass* of a
// family is picked up via the closure.
func TestDescriptorsThroughSubclass(t *testing.T) {
	g := Base()
	sub := rdf.NewIRI(rdf.RDFSSubClassOf)
	myFam := rdf.NewIRI("http://fam/EventAlgebras")
	g.Add(rdf.Triple{S: myFam, P: sub, O: ClassEventLanguage})
	lang := rdf.NewIRI("http://lang/alg")
	g.Add(rdf.Triple{S: lang, P: rdf.NewIRI(rdf.RDFType), O: myFam})
	g.Add(rdf.Triple{S: lang, P: PropImplementedBy, O: rdf.NewIRI("http://lang/alg#svc")})
	g.Add(rdf.Triple{S: rdf.NewIRI("http://lang/alg#svc"), P: PropEndpoint, O: rdf.NewLiteral("http://host/alg")})
	ds := Descriptors(g)
	if len(ds) != 1 || len(ds[0].Kinds) != 1 || ds[0].Kinds[0] != ruleml.EventComponent {
		t.Fatalf("descriptors = %+v", ds)
	}
}
