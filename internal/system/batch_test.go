package system

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/store"
)

// admitOutcome is everything observable about admitting N events into a
// fresh system: which rule firings happened (the x attribute of each
// notification), the events_admitted_total delta, and the journal record
// counts by kind. The batched admission property (satellite of the
// ordered-dispatch fix) says these must be identical whether the N events
// arrive as one batch or as N sequential single-event POSTs.
type admitOutcome struct {
	fired    []string
	admitted int64
	journal  map[string]int64
	seqLines int
}

// admitEvents stands up a fresh durable system, registers the t:ping →
// t:pong rule, and admits n events in the given mode: "sequential"
// (n single POSTs), "envelope" (one eca:events document) or "ndjson"
// (one application/x-ndjson body).
func admitEvents(t *testing.T, mode string, n int) admitOutcome {
	t.Helper()
	hub := obs.NewHub()
	st, err := store.Open(t.TempDir(), store.Options{Fsync: store.FsyncAlways, Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewLocal(Config{Store: st, Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/engine/rules", "application/xml", strings.NewReader(simpleRuleXML("batch-rule")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("register = %d", resp.StatusCode)
	}

	event := func(i int) string {
		return fmt.Sprintf(`<t:ping xmlns:t="%s" x="%d"/>`, tNS, i)
	}
	var seqLines int
	post := func(contentType, body string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/events", contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("POST /events (%s) = %d %q", mode, resp.StatusCode, out)
		}
		seqLines += len(strings.Fields(string(out)))
	}
	switch mode {
	case "sequential":
		for i := 0; i < n; i++ {
			post("application/xml", event(i))
		}
	case "envelope":
		var b strings.Builder
		fmt.Fprintf(&b, `<eca:events xmlns:eca="%s" xmlns:t="%s">`, protocol.ECANS, tNS)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, `<t:ping x="%d"/>`, i)
		}
		b.WriteString(`</eca:events>`)
		post("application/xml", b.String())
	case "ndjson":
		var b strings.Builder
		for i := 0; i < n; i++ {
			line, err := json.Marshal(event(i))
			if err != nil {
				t.Fatal(err)
			}
			b.Write(line)
			b.WriteByte('\n')
		}
		post("application/x-ndjson", b.String())
	default:
		t.Fatalf("unknown mode %q", mode)
	}

	out := admitOutcome{journal: map[string]int64{}, seqLines: seqLines}
	for _, nt := range sys.Notifier.Sent() {
		out.fired = append(out.fired, nt.Message.AttrValue("", "x"))
	}
	sort.Strings(out.fired)
	reg := hub.Metrics()
	out.admitted = reg.CounterVec("events_admitted_total", "", "tenant").With("").Value()
	for _, kind := range []string{store.KindEvent, store.KindEventAck} {
		out.journal[kind] = reg.CounterVec("store_journal_records_total", "", "kind").With(kind).Value()
	}
	return out
}

// TestBatchedAdmissionEquivalence: for N in {1, 2, 7, 64}, admitting N
// events as one batch (either wire shape) is observably identical to N
// sequential single-event POSTs — same rule firings, same
// events_admitted_total delta, same journal records — and the batch
// response carries one sequence number per event.
func TestBatchedAdmissionEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			want := admitEvents(t, "sequential", n)
			if len(want.fired) != n {
				t.Fatalf("sequential baseline fired %d rules, want %d", len(want.fired), n)
			}
			for _, mode := range []string{"envelope", "ndjson"} {
				got := admitEvents(t, mode, n)
				if strings.Join(got.fired, ",") != strings.Join(want.fired, ",") {
					t.Errorf("%s firings = %v, sequential = %v", mode, got.fired, want.fired)
				}
				if got.admitted != want.admitted || got.admitted != int64(n) {
					t.Errorf("%s events_admitted_total = %d, sequential = %d, want %d", mode, got.admitted, want.admitted, n)
				}
				for kind, w := range want.journal {
					if got.journal[kind] != w {
						t.Errorf("%s journal records kind=%s: %d, sequential %d", mode, kind, got.journal[kind], w)
					}
				}
				if got.seqLines != n {
					t.Errorf("%s response carried %d sequence numbers, want %d", mode, got.seqLines, n)
				}
			}
		})
	}
}

// TestBatchAdmissionErrors: malformed batches are rejected as 400s before
// anything is journaled or published.
func TestBatchAdmissionErrors(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()
	cases := []struct {
		name, ct, body string
	}{
		{"empty envelope", "application/xml", `<eca:events xmlns:eca="` + protocol.ECANS + `"/>`},
		{"empty ndjson", "application/x-ndjson", "\n\n"},
		{"ndjson bad json", "application/x-ndjson", "<not-json/>\n"},
		{"ndjson bad xml", "application/x-ndjson", `"<unclosed"` + "\n"},
		{"bad xml", "application/xml", `<unclosed`},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/events", c.ct, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, resp.StatusCode)
		}
	}
}

// TestPartitionedSystemEndToEnd: a system with DetectorPartitions still
// fires rules for batched admissions; detection is asynchronous past the
// partition queues, so the firings are awaited.
func TestPartitionedSystemEndToEnd(t *testing.T) {
	sys, err := NewLocal(Config{DetectorPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/engine/rules", "application/xml", strings.NewReader(simpleRuleXML("part-rule")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var b strings.Builder
	fmt.Fprintf(&b, `<eca:events xmlns:eca="%s" xmlns:t="%s">`, protocol.ECANS, tNS)
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, `<t:ping x="%d"/>`, i)
	}
	b.WriteString(`</eca:events>`)
	resp, err = http.Post(srv.URL+"/events", "application/xml", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(sys.Notifier.Sent()) < 16 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(sys.Notifier.Sent()); got != 16 {
		t.Fatalf("partitioned system fired %d rules, want 16", got)
	}
}
