package system

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/xmltree"
)

const tNS = "http://t/"

func simpleRuleXML(id string) string {
	return `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="` + tNS + `" id="` + id + `">
	  <eca:event><t:ping x="$X"/></eca:event>
	  <eca:action><t:pong x="$X"/></eca:action>
	</eca:rule>`
}

func TestNotifierCollectsAndHooks(t *testing.T) {
	n := &Notifier{}
	var hooked []string
	n.OnSend(func(x Notification) { hooked = append(hooked, x.Message.Name.Local) })
	n.Send(xmltree.NewElement("", "a"), nil)
	n.Send(xmltree.NewElement("", "b"), nil)
	if len(n.Sent()) != 2 || len(hooked) != 2 {
		t.Fatalf("sent=%d hooked=%d", len(n.Sent()), len(hooked))
	}
	n.Reset()
	if len(n.Sent()) != 0 {
		t.Error("reset failed")
	}
}

func TestMuxManagementEndpoints(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	// Register a rule over HTTP.
	resp, err := http.Post(srv.URL+"/engine/rules", "application/xml", strings.NewReader(simpleRuleXML("http-rule")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "http-rule" {
		t.Fatalf("register: %d %q", resp.StatusCode, body)
	}

	// Publish an event over HTTP.
	ev := `<t:ping xmlns:t="` + tNS + `" x="7"/>`
	resp, err = http.Post(srv.URL+"/events", "application/xml", strings.NewReader(ev))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "1" {
		t.Fatalf("event: %d %q", resp.StatusCode, body)
	}
	if got := len(sys.Notifier.Sent()); got != 1 {
		t.Fatalf("rule did not fire over HTTP: %d", got)
	}

	// Stats endpoint.
	resp, err = http.Get(srv.URL + "/engine/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"rules 1", "instances_created 1", "notifications 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("stats missing %q:\n%s", want, body)
		}
	}

	// Error paths.
	resp, _ = http.Post(srv.URL+"/engine/rules", "application/xml", strings.NewReader("<bogus/>"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad rule status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/engine/rules?format=ids")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "http-rule" {
		t.Errorf("GET rules?format=ids = %d %q", resp.StatusCode, body)
	}
	resp, _ = http.Get(srv.URL + "/engine/rules")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var list struct {
		Rules []engine.RuleInfo `json:"rules"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("GET rules JSON: %v\n%s", err, body)
	}
	if len(list.Rules) != 1 || list.Rules[0].ID != "http-rule" ||
		list.Rules[0].Firings != 1 || list.Rules[0].Registered.IsZero() {
		t.Errorf("GET rules = %+v", list.Rules)
	}
	resp, _ = http.Get(srv.URL + "/engine/rules/http-rule")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var one engine.RuleInfo
	if err := json.Unmarshal(body, &one); err != nil || one.ID != "http-rule" {
		t.Errorf("GET rules/{id} = %v %q", err, body)
	}
	// DELETE on the collection is a method error; on an id it unregisters.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/engine/rules", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE rules status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/engine/rules/nope", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown rule status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/engine/rules/http-rule", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != 200 {
		t.Errorf("DELETE rule status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := sys.Engine.Rules(); len(got) != 0 {
		t.Errorf("rules after DELETE = %v", got)
	}
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/engine/rules/x", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT rules/{id} status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/events", "application/xml", strings.NewReader("not xml"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad event status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTwoNodeDistributedDetection runs the event service and the engine on
// two different "nodes": node A hosts the stream and the matcher, node B
// hosts the engine. The registration travels A-ward with a ReplyTo URL, and
// detections come back through B's /engine/detect callback — the fully
// remote path of Fig. 3.
func TestTwoNodeDistributedDetection(t *testing.T) {
	// Node A: stream + matcher, delivering via HTTP only.
	nodeA, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(nodeA.Mux(nil, nil))
	defer srvA.Close()

	// Node B: engine whose GRH knows the matcher only as a remote service,
	// and which hands out its own detection callback URL.
	nodeB, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(nodeB.Mux(nil, nil))
	defer srvB.Close()
	if err := nodeB.GRH.Register(grh.Descriptor{
		Language:       services.MatcherNS,
		Name:           "matcher on node A",
		Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
		FrameworkAware: true,
		Endpoint:       srvA.URL + "/services/matcher",
	}); err != nil {
		t.Fatal(err)
	}
	// Rebuild node B's engine with the callback URL (engine options are
	// fixed at construction).
	nodeB.Engine = engine.New(nodeB.GRH, engine.WithReplyTo(srvB.URL+"/engine/detect"))

	rule := ruleml.MustParse(simpleRuleXML("remote"))
	if err := nodeB.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	// The registration must have reached node A.
	if nodeA.Matcher.Registrations() != 1 {
		t.Fatalf("node A registrations = %d", nodeA.Matcher.Registrations())
	}
	// An event on node A's stream must fire node B's rule via the callback.
	payload := xmltree.NewElement(tNS, "ping")
	payload.SetAttr("", "x", "42")
	nodeA.Stream.Publish(events.New(payload))
	sent := nodeB.Notifier.Sent()
	if len(sent) != 1 || sent[0].Message.AttrValue("", "x") != "42" {
		t.Fatalf("node B notifications = %+v", sent)
	}
}

func TestDistributeRewiresEverything(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()
	if err := sys.Distribute(srv.URL); err != nil {
		t.Fatal(err)
	}
	for _, lang := range sys.GRH.Languages() {
		d, _ := sys.GRH.Lookup(lang)
		if d.Local != nil || d.Endpoint == "" {
			t.Errorf("language %s still local after Distribute", lang)
		}
	}
}

func TestConfigDatalogErrorPropagates(t *testing.T) {
	prog := datalog.MustParse(`win(X) :- move(X, Y), not win(Y). move(a, a).`)
	if _, err := NewLocal(Config{Datalog: prog}); err == nil {
		t.Error("unstratifiable rulebase should fail wiring")
	}
}

func TestEngineDetectEndpointRejectsGarbage(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/engine/detect", "application/xml", strings.NewReader("<wrong/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("detect garbage status = %d", resp.StatusCode)
	}
}

func TestOpaqueEndpointsMounted(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Store.Put("d", xmltree.MustParse(`<d><v>1</v></d>`))
	opaqueDoc := xmltree.MustParse(`<root><item k="a"/></root>`)
	srv := httptest.NewServer(sys.Mux(opaqueDoc, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/opaque/store?query=" + urlQueryEscape("//item/@k"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "a") {
		t.Errorf("opaque store = %q", body)
	}
	resp, err = http.Get(srv.URL + "/opaque/xquery?query=" + urlQueryEscape("doc('d')//v/text()"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "1") {
		t.Errorf("opaque xquery = %q", body)
	}
}

func urlQueryEscape(s string) string {
	var b strings.Builder
	for _, c := range []byte(s) {
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}
