package system

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/xmltree"
)

// syncBuf is a concurrency-safe log sink: service handlers run on the
// httptest server's goroutines while the engine logs from the test's.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func (b *syncBuf) Reset() {
	b.mu.Lock()
	b.buf.Reset()
	b.mu.Unlock()
}

// TestDistributedTraceStitching is the acceptance test of the
// trace-propagation tentpole: in a distributed deployment, one rule
// instance's trace must hold the GRH's client spans AND the service-side
// parse/evaluate/encode spans, correlated solely via the propagated
// X-ECA-Trace-Id header, retrievable stitched from /debug/traces?id=;
// and every structured log record emitted while the instance evaluates
// must carry its trace_id.
func TestDistributedTraceStitching(t *testing.T) {
	hub := obs.NewHub()
	sink := &syncBuf{}
	cfg := Config{Obs: hub, Log: obs.NewLogger(sink, "json", slog.LevelDebug)}
	sys, err := NewLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Store.Put("people", xmltree.MustParse(`<people>
	  <person k="7"><name>Ada</name></person>
	  <person k="7"><name>Bob</name></person>
	</people>`))
	sys.Store.Put("grades", xmltree.MustParse(`<grades>
	  <grade name="Ada"><value>5</value></grade>
	  <grade name="Bob"><value>2</value></grade>
	</grades>`))

	// Record every trace header crossing the wire: correlation must come
	// from the propagated header, nothing else.
	var hdrMu sync.Mutex
	var seenTraceIDs []string
	mux := sys.Mux(nil, nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(protocol.TraceIDHeader); id != "" {
			hdrMu.Lock()
			seenTraceIDs = append(seenTraceIDs, id)
			hdrMu.Unlock()
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()
	if err := sys.Distribute(srv.URL); err != nil {
		t.Fatal(err)
	}

	rule, err := ruleml.ParseString(chainRuleXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	sink.Reset() // registration noise is not part of the instance

	ping(sys, "7")
	if got := len(sys.Notifier.Sent()); got != 1 {
		t.Fatalf("notifications = %d, want 1", got)
	}

	traces := hub.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("instance traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	if tr.State != "completed" {
		t.Fatalf("state = %q: %+v", tr.State, tr)
	}

	// Client spans in order, with server spans stitched under the remote
	// dispatches. The test component evaluates locally: no children.
	var stages []string
	for _, s := range tr.Spans {
		stages = append(stages, s.Stage)
	}
	if got := strings.Join(stages, "→"); got != "event→query→query→test→action" {
		t.Fatalf("span sequence = %s", got)
	}
	for _, i := range []int{1, 2, 4} { // the two queries and the action travel over HTTP
		sp := tr.Spans[i]
		if sp.Mode != "grh" || sp.Err != "" {
			t.Fatalf("span %d (%s) = %+v", i, sp.Stage, sp)
		}
		if len(sp.Children) != 3 {
			t.Fatalf("span %d (%s): %d server spans, want parse/evaluate/encode", i, sp.Stage, len(sp.Children))
		}
		for j, phase := range []string{"parse", "evaluate", "encode"} {
			child := sp.Children[j]
			if child.Stage != phase || child.Mode != "server" {
				t.Errorf("span %d child %d = %+v, want phase %s mode server", i, j, child, phase)
			}
		}
		// The evaluate phase saw the projected input relation.
		if in := sp.Children[1].TuplesIn; in != sp.TuplesIn {
			t.Errorf("span %d (%s): server evaluate tuples_in = %d, client sent %d", i, sp.Stage, in, sp.TuplesIn)
		}
	}
	if len(tr.Spans[3].Children) != 0 {
		t.Errorf("local test span grew server children: %+v", tr.Spans[3])
	}

	// Correlation came from the propagated header alone.
	hdrMu.Lock()
	ids := append([]string(nil), seenTraceIDs...)
	hdrMu.Unlock()
	if len(ids) != 3 {
		t.Errorf("trace headers on the wire = %d (%v), want 3", len(ids), ids)
	}
	for _, id := range ids {
		if id != tr.ID {
			t.Errorf("propagated header %q != instance id %q", id, tr.ID)
		}
	}

	// The stitched view is retrievable by id.
	resp, err := http.Get(srv.URL + "/debug/traces?id=" + url.QueryEscape(tr.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/traces?id= %d: %s", resp.StatusCode, body)
	}
	var fetched obs.InstanceTrace
	if err := json.Unmarshal(body, &fetched); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, body)
	}
	if fetched.ID != tr.ID || len(fetched.Spans) != 5 || len(fetched.Spans[1].Children) != 3 {
		t.Errorf("fetched trace = %+v", fetched)
	}

	// Every structured log record emitted while the instance evaluated —
	// engine, GRH and server-side service records alike — carries its
	// trace_id.
	lines := sink.Lines()
	if len(lines) == 0 {
		t.Fatal("no structured log records")
	}
	wantKey := `"trace_id":"` + tr.ID + `"`
	sawService, sawEngine := false, false
	for _, line := range lines {
		if !strings.Contains(line, wantKey) {
			t.Errorf("log record without the instance trace_id: %s", line)
		}
		if strings.Contains(line, "service request handled") {
			sawService = true
		}
		if strings.Contains(line, "rule instance completed") {
			sawEngine = true
		}
	}
	if !sawService || !sawEngine {
		t.Errorf("log coverage: service=%v engine=%v\n%s", sawService, sawEngine, strings.Join(lines, "\n"))
	}
}

// TestDistributedTraceBackCompat re-points the query language at a
// PR-1-era service that ignores the trace headers and answers without a
// log:trace element: the instance must evaluate normally and yield the
// old-shaped trace (client spans only, no children, no errors).
func TestDistributedTraceBackCompat(t *testing.T) {
	hub := obs.NewHub()
	sys := newChainSystem(t, hub)

	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := protocol.DecodeRequest(doc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a, err := sys.XQuery.Handle(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		io.WriteString(w, protocol.EncodeAnswers(a).String())
	}))
	defer legacy.Close()
	if err := sys.GRH.Register(grh.Descriptor{
		Language: services.XQueryNS, Name: "legacy XQuery (no log:trace)",
		Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true,
		Endpoint: legacy.URL,
	}); err != nil {
		t.Fatal(err)
	}

	ping(sys, "7")
	if got := len(sys.Notifier.Sent()); got != 1 {
		t.Fatalf("notifications = %d, want 1", got)
	}
	traces := hub.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if tr.State != "completed" || len(tr.Spans) != 5 {
		t.Fatalf("trace = %+v", tr)
	}
	for i, sp := range tr.Spans {
		if sp.Err != "" {
			t.Errorf("span %d error: %s", i, sp.Err)
		}
		if len(sp.Children) != 0 {
			t.Errorf("span %d grew children from a legacy service: %+v", i, sp)
		}
	}
}

// TestPProfMount: Config.PProf mounts the profiler on the system mux.
func TestPProfMount(t *testing.T) {
	sys, err := NewLocal(Config{PProf: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/goroutine = %d %q", resp.StatusCode, string(body[:min(len(body), 80)]))
	}

	plain, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(plain.Mux(nil, nil))
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/debug/pprof/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof mounted without PProf: %d", resp.StatusCode)
	}
}
