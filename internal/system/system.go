// Package system wires the complete service-oriented architecture of
// Fig. 3: the ECA engine, the Generic Request Handler, and the component
// language services — either fully in-process (every service a local
// grh.Service) or distributed, with each service behind a real HTTP
// endpoint and the engine receiving detection callbacks over HTTP.
package system

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bindings"
	"repro/internal/cluster"
	"repro/internal/compilecache"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/snoop"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/xmltree"
)

// Notification is one message "sent" by the domain action executor.
type Notification struct {
	Message *xmltree.Node
	Tuple   bindings.Tuple
}

// Notifier collects sent messages (the customer-facing side of the
// car-rental example). Safe for concurrent use.
type Notifier struct {
	mu   sync.Mutex
	sent []Notification
	hook func(Notification)
}

// Send records a message.
func (n *Notifier) Send(msg *xmltree.Node, t bindings.Tuple) {
	n.mu.Lock()
	n.sent = append(n.sent, Notification{msg, t})
	h := n.hook
	n.mu.Unlock()
	if h != nil {
		h(Notification{msg, t})
	}
}

// Sent returns a snapshot of all messages sent so far.
func (n *Notifier) Sent() []Notification {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Notification, len(n.sent))
	copy(out, n.sent)
	return out
}

// Reset clears the collected messages.
func (n *Notifier) Reset() {
	n.mu.Lock()
	n.sent = nil
	n.mu.Unlock()
}

// OnSend installs a hook invoked for every message.
func (n *Notifier) OnSend(h func(Notification)) {
	n.mu.Lock()
	n.hook = h
	n.mu.Unlock()
}

// Config parameterizes a System.
type Config struct {
	// Datalog is the rulebase for the LP-style query service; nil for an
	// empty one.
	Datalog *datalog.Program
	// Namespaces are offered to query services for prefixed name tests.
	Namespaces map[string]string
	// Logger receives engine traces.
	Logger engine.Logger
	// Trace receives GRH traffic.
	Trace grh.TraceFunc
	// Obs is the observability hub instrumenting the engine, GRH and
	// services; nil runs the system uninstrumented.
	Obs *obs.Hub
	// Log is the structured logger shared by the engine, GRH and service
	// handlers; every record it emits for a live rule instance carries the
	// instance's trace_id. nil disables structured logging.
	Log *obs.Logger
	// PProf mounts net/http/pprof profiling handlers under /debug/pprof/
	// on the Mux.
	PProf bool
	// HTTPTimeout bounds every outbound service request made by the GRH
	// and the deliverer; grh.DefaultTimeout when zero.
	HTTPTimeout time.Duration
	// Retry enables GRH retry with exponential backoff for idempotent
	// dispatches (queries and tests; never actions). The zero value
	// disables retry; grh.DefaultRetryPolicy is a sane starting point.
	Retry grh.RetryPolicy
	// Breaker enables the GRH's per-endpoint circuit breaker. The zero
	// value disables it; grh.DefaultBreakerPolicy is a sane starting
	// point.
	Breaker grh.BreakerPolicy
	// Cache enables the GRH answer cache and request coalescing for
	// idempotent dispatches (queries and tests; never actions). The zero
	// value disables it; grh.DefaultCachePolicy is a sane starting point.
	Cache grh.CachePolicy
	// Partition enables partitioned parallel dispatch: large input
	// relations of idempotent dispatches are sharded and dispatched
	// concurrently. The zero value disables it;
	// grh.DefaultPartitionPolicy is a sane starting point.
	Partition grh.PartitionPolicy
	// Store is the durability subsystem (write-ahead rule/event journal,
	// snapshots, crash recovery — see internal/store and
	// docs/DURABILITY.md). nil keeps the engine purely in-memory, the
	// historical behaviour. Call System.Recover after NewLocal to replay
	// the recovered state into the engine.
	Store *store.Store
	// Cluster joins this system to a multi-node deployment (rule sharding,
	// event forwarding, journal replication — see internal/cluster and
	// docs/CLUSTERING.md). nil runs single-node, behaviourally identical
	// to a build without the cluster layer. Call System.StartCluster after
	// Recover to launch probing and replication.
	Cluster *cluster.Options
	// MaxPendingEvents caps how many POST /events requests may be in
	// flight at once; excess requests are answered 429 with a Retry-After
	// header and the documented overload body. Zero means no admission
	// limit, the historical behaviour.
	MaxPendingEvents int
	// DetectorPartitions shards SNOOP and atomic-matcher detection across
	// this many partition workers, each detector pinned to one worker by
	// rule key (see services.DetectorPool). Zero keeps detection inline on
	// the publishing goroutine — the historical, fully synchronous
	// behaviour that most tests and the quickstart rely on.
	DetectorPartitions int
	// PartitionQueue is the per-partition task queue capacity;
	// services.DefaultPartitionQueue when zero. A full queue blocks the
	// stream's ordered dispatch and, through it, the POST /events handlers
	// holding admission slots — so sustained detector overload surfaces as
	// -max-pending-events 429s. Only meaningful with DetectorPartitions.
	PartitionQueue int
	// DefaultTenant names the tenant every tenant-less request resolves
	// to; tenant.Default ("public") when empty. The default tenant's
	// internal wire form is the empty string, which keeps journals,
	// protocol documents and metric labels byte-identical with
	// deployments that never name a tenant. See docs/MULTITENANCY.md.
	DefaultTenant string
	// TenantQuotas declares per-tenant quotas up front, keyed by tenant
	// id; the key "*" sets the quotas every undeclared tenant gets on
	// first use. A zero quota field means unlimited.
	TenantQuotas map[string]tenant.Quotas
}

// System is one wired deployment of the architecture.
type System struct {
	Stream   *events.Stream
	Store    *services.DocStore
	GRH      *grh.GRH
	Engine   *engine.Engine
	Notifier *Notifier
	Obs      *obs.Hub
	Log      *obs.Logger
	Durable  *store.Store     // nil when the deployment is in-memory only
	Cluster  *cluster.Node    // nil when the deployment is single-node
	Tenants  *tenant.Registry // tenant set; always non-nil after NewLocal

	pprof      bool
	eventSlots chan struct{}          // admission semaphore for POST /events; nil = unlimited
	maxPending int                    // cap of eventSlots; 0 = unlimited
	pool       *services.DetectorPool // nil = inline detection

	tenantMu   sync.Mutex
	spaces     map[string]*Space         // per-tenant rule spaces, keyed by wire form ("" = default)
	engineBase []engine.Option           // options every space's engine is built from
	detBase    []services.DetectorOption // options every space's detectors are built from
	matcherSvc grh.Service               // tenant router over the per-space matchers
	snoopSvc   grh.Service               // tenant router over the per-space SNOOP services

	metAdmitted  *obs.CounterVec // events_admitted_total{tenant}
	metShed      *obs.CounterVec // events_shed_total{tenant,reason}
	metPending   *obs.Gauge      // events_pending
	metBatchSize *obs.Histogram  // events_batch_size

	// Matcher and Snoop (like Engine above) alias the default tenant's
	// space — the historical single-tenant surface most tests and the
	// quickstart use. Other tenants' components live in their Space.
	Matcher *services.EventMatcher
	Snoop   *services.SnoopService
	XQuery  *services.XQueryService
	Datalog *services.DatalogService
	Actions *services.ActionExecutor

	started time.Time
}

// NewLocal wires every service in-process, the deployment used by the
// quickstart example and most tests.
func NewLocal(cfg Config) (*System, error) {
	s := &System{
		Stream: events.NewStream(),
		Store:  services.NewDocStore(),
		GRH: grh.New(grh.WithObs(cfg.Obs), grh.WithTimeout(cfg.HTTPTimeout),
			grh.WithRetry(cfg.Retry), grh.WithBreaker(cfg.Breaker),
			grh.WithCache(cfg.Cache), grh.WithPartition(cfg.Partition),
			grh.WithLog(cfg.Log)),
		Notifier: &Notifier{},
		Obs:      cfg.Obs,
		Log:      cfg.Log,
		Durable:  cfg.Store,
		pprof:    cfg.PProf,
		started:  time.Now(),
	}
	if cfg.Trace != nil {
		s.GRH.SetTrace(cfg.Trace)
	}
	tenants, err := tenant.NewRegistry(cfg.DefaultTenant)
	if err != nil {
		return nil, fmt.Errorf("system: %w", err)
	}
	quotaIDs := make([]string, 0, len(cfg.TenantQuotas))
	for id := range cfg.TenantQuotas {
		quotaIDs = append(quotaIDs, id)
	}
	sort.Strings(quotaIDs)
	for _, id := range quotaIDs {
		if err := tenants.Declare(id, cfg.TenantQuotas[id]); err != nil {
			return nil, fmt.Errorf("system: tenant quotas: %w", err)
		}
	}
	s.Tenants = tenants
	s.spaces = make(map[string]*Space)
	compilecache.Default.SetObs(cfg.Obs)
	s.engineBase = []engine.Option{engine.WithObs(cfg.Obs), engine.WithLog(cfg.Log)}
	if cfg.Logger != nil {
		s.engineBase = append(s.engineBase, engine.WithLogger(cfg.Logger))
	}
	if cfg.DetectorPartitions > 0 {
		s.pool = services.NewDetectorPool(cfg.DetectorPartitions, cfg.PartitionQueue, cfg.Obs)
		s.detBase = append(s.detBase, services.WithDetectorPool(s.pool))
	}
	// The default tenant's space is built eagerly — it is the system the
	// single-tenant surface (System.Engine/Matcher/Snoop) exposes. Other
	// tenants' spaces appear on first use.
	def, err := s.spaceFor("")
	if err != nil {
		return nil, fmt.Errorf("system: default tenant: %w", err)
	}
	s.Engine, s.Matcher, s.Snoop = def.Engine, def.Matcher, def.Snoop
	s.matcherSvc = spaceService{s, func(sp *Space) grh.Service { return sp.Matcher }}
	s.snoopSvc = spaceService{s, func(sp *Space) grh.Service { return sp.Snoop }}
	s.XQuery = services.NewXQueryService(s.Store, cfg.Namespaces)
	s.Actions = services.NewActionExecutor(s.Store, s.Stream, s.Notifier.Send)

	prog := cfg.Datalog
	if prog == nil {
		prog = &datalog.Program{}
	}
	dl, err := services.NewDatalogService(prog)
	if err != nil {
		return nil, fmt.Errorf("system: datalog rulebase: %w", err)
	}
	s.Datalog = dl

	regs := []grh.Descriptor{
		{Language: services.MatcherNS, Name: "atomic event matcher", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Local: s.matcherSvc},
		{Language: snoop.NS, Name: "SNOOP detection service", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Local: s.snoopSvc},
		{Language: services.XQueryNS, Name: "XQuery service", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Local: s.XQuery},
		{Language: services.DatalogNS, Name: "Datalog service", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Local: s.Datalog},
		{Language: services.TestNS, Name: "test evaluator", Kinds: []ruleml.ComponentKind{ruleml.TestComponent}, FrameworkAware: true, Local: services.TestEvaluator{}},
		{Language: services.ActionNS, Name: "action executor", Kinds: []ruleml.ComponentKind{ruleml.ActionComponent}, FrameworkAware: true, Local: s.Actions},
	}
	for _, d := range regs {
		if err := s.GRH.Register(d); err != nil {
			return nil, err
		}
	}
	s.GRH.SetDefault(ruleml.EventComponent, services.MatcherNS)
	s.GRH.SetDefault(ruleml.QueryComponent, services.XQueryNS)
	s.GRH.SetDefault(ruleml.TestComponent, services.TestNS)
	s.GRH.SetDefault(ruleml.ActionComponent, services.ActionNS)
	if cfg.MaxPendingEvents > 0 {
		s.eventSlots = make(chan struct{}, cfg.MaxPendingEvents)
		s.maxPending = cfg.MaxPendingEvents
	}
	reg := cfg.Obs.Metrics()
	s.metAdmitted = reg.CounterVec("events_admitted_total",
		"Events accepted by POST /events and published on the local stream, by tenant (empty = default tenant).", "tenant")
	s.metShed = reg.CounterVec("events_shed_total",
		"POST /events requests shed with 429, by tenant and reason (overload = node admission limit, quota = tenant quota).",
		"tenant", "reason")
	s.metPending = reg.Gauge("events_pending", "POST /events requests currently holding an admission slot.")
	s.metBatchSize = reg.Histogram("events_batch_size",
		"Events admitted per POST /events request (1 for the single-event contract; the batch size for eca:events envelopes and NDJSON bodies).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	if cfg.Cluster != nil {
		node, err := cluster.New(*cfg.Cluster, cluster.Hooks{
			LocalRules:        s.localRules,
			RegisterRecovered: s.registerRecovered,
			PublishRecovered:  s.publishRecovered,
		}, cfg.Store)
		if err != nil {
			return nil, err
		}
		s.Cluster = node
	}
	return s, nil
}

// StartCluster launches the cluster node's health prober and journal
// shipper. Call it once, after Recover has replayed the local journal (the
// shipper's opening base sync must mirror the recovered state); a no-op on
// single-node deployments.
func (s *System) StartCluster() {
	if s.Cluster != nil {
		s.Cluster.Start()
	}
}

// Mux builds the HTTP surface of a distributed deployment: every component
// service mounted under its conventional path, plus the engine's detection
// callback and rule/event management endpoints used by ecactl.
//
//	POST /services/matcher    eca:request (register/unregister)
//	POST /services/snoop      eca:request
//	POST /services/xquery     eca:request (query)
//	POST /services/datalog    eca:request (query)
//	POST /services/test       eca:request (test)
//	POST /services/action     eca:request (action)
//	GET  /opaque/store?query= raw XPath  (framework-unaware, Fig. 9)
//	GET  /opaque/xquery?query= raw XQuery (framework-unaware, Fig. 10)
//	POST /engine/detect       log:answers (detection callback)
//	POST /engine/rules        eca:rule document → registers the rule
//	GET  /engine/rules        rule bookkeeping as JSON (?format=ids for the plain id list)
//	GET  /engine/rules/{id}   one rule's bookkeeping as JSON
//	DELETE /engine/rules/{id} unregisters the rule
//	POST /events              event payload → journaled (when durable) and published;
//	                          an <eca:events> envelope or an NDJSON body
//	                          (Content-Type application/x-ndjson, one JSON
//	                          string of XML per line) admits a whole batch
//	                          under one journal fsync and one sequencing step;
//	                          routed/forwarded to matching peers when clustered;
//	                          429 + Retry-After + Overload body past the admission limit
//	GET  /cluster/status      this node's cluster view as JSON (when clustered)
//	POST /cluster/journal     journal replication ingest from a peer (when clustered)
//	GET  /cluster/metrics     fleet-wide metric federation: every live node's
//	                          /metrics merged under a node label (when clustered)
//	GET  /engine/stats        plain-text counters
//	GET  /healthz             liveness + readiness + rule/service counts as JSON
//	                          (ready degrades as admission pressure nears
//	                          -max-pending-events; incl. store/cluster sections)
//	GET  /metrics             Prometheus text exposition (when Obs is set)
//	GET  /debug/traces        rule-instance span traces as JSON (when Obs is set)
//	GET  /debug/pprof/        runtime profiling (when Config.PProf is set)
func (s *System) Mux(opaqueDoc *xmltree.Node, namespaces map[string]string) *http.ServeMux {
	mux := http.NewServeMux()
	// The matcher and SNOOP endpoints mount the tenant routers, so a
	// protocol document carrying a tenant stamp reaches that tenant's
	// detector even over the distributed wiring.
	mux.Handle("/services/matcher", services.NewHandler(s.matcherSvc, s.Obs, s.Log))
	mux.Handle("/services/snoop", services.NewHandler(s.snoopSvc, s.Obs, s.Log))
	mux.Handle("/services/xquery", services.NewHandler(s.XQuery, s.Obs, s.Log))
	mux.Handle("/services/datalog", services.NewHandler(s.Datalog, s.Obs, s.Log))
	mux.Handle("/services/test", services.NewHandler(services.TestEvaluator{}, s.Obs, s.Log))
	mux.Handle("/services/action", services.NewHandler(s.Actions, s.Obs, s.Log))
	if opaqueDoc != nil {
		mux.Handle("/opaque/store", services.NewOpaqueXMLStore(opaqueDoc, namespaces).SetObs(s.Obs))
	}
	mux.Handle("/opaque/xquery", services.NewOpaqueXQueryNode(s.Store, namespaces).SetObs(s.Obs))
	mux.HandleFunc("/engine/detect", func(w http.ResponseWriter, r *http.Request) {
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a, err := protocol.DecodeAnswers(doc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.Engine.OnDetection(a)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/engine/rules", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			wire, filtered, ok := s.listTenant(w, r)
			if !ok {
				return
			}
			infos := s.ruleInfos()
			if filtered {
				kept := infos[:0]
				for _, info := range infos {
					if info.Tenant == wire {
						kept = append(kept, info)
					}
				}
				infos = kept
			}
			if r.URL.Query().Get("format") == "ids" {
				// Plain-text id list, the historical ecactl contract.
				for _, info := range infos {
					fmt.Fprintln(w, info.ID)
				}
				return
			}
			writeJSON(w, struct {
				Rules []engine.RuleInfo `json:"rules"`
			}{infos})
		case http.MethodPost:
			sp, ok := s.spaceFromRequest(w, r)
			if !ok {
				return
			}
			doc, err := xmltree.Parse(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			rule, err := ruleml.Parse(doc)
			if err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			// On a clustered deployment a first-hand registration (no origin
			// header) goes to the rule id's owner on the hash ring; ids are
			// minted before hashing so placement is decided here.
			if s.Cluster != nil && r.Header.Get(cluster.OriginHeader) == "" {
				if rule.ID == "" {
					rule.ID = s.Cluster.AssignID(doc)
					if root := doc.Root(); root != nil {
						root.SetAttr("", "id", rule.ID)
					}
				}
				if owner := s.Cluster.Owner(rule.ID); owner != s.Cluster.ID() {
					status, body, err := s.Cluster.ForwardRule(sp.wire, rule, owner)
					switch {
					case err == nil:
						w.WriteHeader(status)
						fmt.Fprint(w, body)
						return
					case !errors.Is(err, cluster.ErrPeerDown):
						http.Error(w, err.Error(), http.StatusBadGateway)
						return
					}
					// Owner declared dead: register locally so the cluster
					// stays writable during failover.
				}
			}
			// The max-rules quota is claimed before registration and rolled
			// back if the engine rejects the rule, so a rejected document
			// never consumes quota.
			if err := sp.Tenant.AcquireRule(); err != nil {
				writeQuotaExceeded(w, err)
				return
			}
			if err := sp.Engine.Register(rule); err != nil {
				sp.Tenant.ReleaseRule()
				// A rule whose component expression does not compile is a
				// malformed request (400); other failures (duplicate ids,
				// unroutable components) stay 422.
				status := http.StatusUnprocessableEntity
				if errors.Is(err, engine.ErrBadExpression) {
					status = http.StatusBadRequest
				}
				http.Error(w, err.Error(), status)
				return
			}
			fmt.Fprintln(w, rule.ID)
		default:
			http.Error(w, "POST an eca:rule document, GET the rule list, or DELETE /engine/rules/{id}", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/engine/rules/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/engine/rules/")
		if id == "" {
			http.Error(w, "missing rule id", http.StatusNotFound)
			return
		}
		switch r.Method {
		case http.MethodGet:
			wire, filtered, ok := s.listTenant(w, r)
			if !ok {
				return
			}
			for _, info := range s.ruleInfos() {
				if filtered && info.Tenant != wire {
					continue
				}
				if info.ID == id {
					writeJSON(w, info)
					return
				}
			}
			http.Error(w, fmt.Sprintf("no rule %q", id), http.StatusNotFound)
		case http.MethodDelete:
			wire, filtered, ok := s.listTenant(w, r)
			if !ok {
				return
			}
			for _, sp := range s.snapshotSpaces() {
				if filtered && sp.wire != wire {
					continue
				}
				err := sp.Engine.Unregister(id)
				if err == nil {
					sp.Tenant.ReleaseRule()
					fmt.Fprintln(w, id)
					return
				}
				if !strings.Contains(err.Error(), "no rule") {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
			}
			http.Error(w, fmt.Sprintf("no rule %q", id), http.StatusNotFound)
		default:
			http.Error(w, "GET or DELETE a rule id", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/engine/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.engineStats()
		fmt.Fprintf(w, "rules %d\ninstances_created %d\ninstances_completed %d\ninstances_died %d\naction_runs %d\nnotifications %d\n",
			st.RulesRegistered, st.InstancesCreated, st.InstancesCompleted, st.InstancesDied, st.ActionRuns, len(s.Notifier.Sent()))
	})
	mux.HandleFunc("/healthz", s.healthz)
	if s.Cluster != nil {
		mux.HandleFunc("/cluster/status", s.Cluster.StatusHandler)
		mux.HandleFunc("/cluster/journal", s.Cluster.JournalHandler)
		mux.HandleFunc("/cluster/metrics", s.Cluster.MetricsHandler)
	}
	if s.Obs != nil {
		mux.Handle("/metrics", s.Obs.MetricsHandler())
		mux.Handle("/debug/traces", s.tenantTraces(s.Obs.TracesHandler()))
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// parseEventDocs extracts the admitted event documents from one POST
// /events body. Three shapes are accepted:
//
//   - a single event document — the historical contract;
//   - an <eca:events> batch envelope: every child element is one event;
//   - with Content-Type application/x-ndjson, newline-delimited JSON
//     strings, each holding one XML event document (the ecaload -batch
//     wire format, which needs no XML envelope assembly on the client).
func parseEventDocs(r *http.Request) ([]*xmltree.Node, error) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/x-ndjson") {
		var docs []*xmltree.Node
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var frag string
			if err := json.Unmarshal([]byte(line), &frag); err != nil {
				return nil, fmt.Errorf("ndjson line %d: %w", len(docs)+1, err)
			}
			doc, err := xmltree.Parse(strings.NewReader(frag))
			if err != nil {
				return nil, fmt.Errorf("ndjson line %d: %w", len(docs)+1, err)
			}
			docs = append(docs, doc)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if len(docs) == 0 {
			return nil, errors.New("empty ndjson event batch")
		}
		return docs, nil
	}
	doc, err := xmltree.Parse(r.Body)
	if err != nil {
		return nil, err
	}
	root := doc.Root()
	if root == nil || root.Name.Space != protocol.ECANS || root.Name.Local != "events" {
		return []*xmltree.Node{doc}, nil
	}
	kids := root.ChildElements()
	if len(kids) == 0 {
		return nil, errors.New("eca:events envelope holds no events")
	}
	docs := make([]*xmltree.Node, 0, len(kids))
	for _, k := range kids {
		// Each event gets its own document so journaling and recovery
		// replay see the same per-event shape as single admissions; the
		// serializer re-synthesizes any xmlns declarations inherited from
		// the envelope.
		d := xmltree.NewDocument()
		d.Append(k.Clone())
		docs = append(docs, d)
	}
	return docs, nil
}

// handleEvents is POST /events: admit one event or a whole batch. A batch
// is journaled under a single store lock acquisition and fsync, sequenced
// atomically (consecutive Seq) and published through the stream's ordered
// dispatch, so its per-event overhead is amortized down to parsing.
func (s *System) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an event document", http.StatusMethodNotAllowed)
		return
	}
	// The admission timestamp anchors the admit→action lifecycle
	// histograms; it is taken before parsing and journaling so the
	// admit stage covers both. One batch = one admission slot: the cap
	// bounds concurrent requests (and thus journal/dispatch pressure),
	// not event count.
	admittedAt := time.Now()
	// The tenant is resolved before the admission slot: a request naming
	// an invalid tenant is a client error even under overload, and the
	// shed counter needs the tenant label either way.
	sp, ok := s.spaceFromRequest(w, r)
	if !ok {
		return
	}
	if s.eventSlots != nil {
		select {
		case s.eventSlots <- struct{}{}:
			s.metPending.Set(float64(len(s.eventSlots)))
			defer func() {
				<-s.eventSlots
				s.metPending.Set(float64(len(s.eventSlots)))
			}()
		default:
			s.metShed.With(sp.wire, "overload").Inc()
			writeOverloaded(w)
			return
		}
	}
	docs, err := parseEventDocs(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Clustered deployments route each event to the replicas whose rules
	// can match it; a request a peer already forwarded (origin header
	// set) is always handled locally, which keeps forwarding one-hop.
	// Forwarded events are not charged against local quotas — the
	// receiving node admits (and meters) them under its own view of the
	// tenant.
	var forwarded []string
	if s.Cluster != nil && r.Header.Get(cluster.OriginHeader) == "" {
		local := docs[:0]
		for _, doc := range docs {
			res := s.Cluster.RouteEvent(sp.wire, doc)
			// Publish locally when local rules match — or when no peer
			// accepted the event, so it is never silently dropped.
			if !res.Local && len(res.Forwarded) > 0 {
				forwarded = append(forwarded, res.Forwarded...)
				continue
			}
			local = append(local, doc)
		}
		docs = local
		if len(docs) == 0 {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, "forwarded to %s\n", strings.Join(forwarded, " "))
			return
		}
	}
	// Tenant quotas gate locally admitted events: the pending-events cap
	// counts events in flight between here and the end of dispatch, and
	// the rate bucket charges the batch as a unit. Both reject with the
	// quota 429 body, which cluster forwarders and clients can tell from
	// node overload.
	if err := sp.Tenant.AcquirePending(len(docs)); err != nil {
		s.metShed.With(sp.wire, "quota").Inc()
		writeQuotaExceeded(w, err)
		return
	}
	defer sp.Tenant.ReleasePending(len(docs))
	if err := sp.Tenant.AdmitEvents(len(docs)); err != nil {
		s.metShed.With(sp.wire, "quota").Inc()
		writeQuotaExceeded(w, err)
		return
	}
	// Journal the accepted events before dispatch, acknowledge after: a
	// crash in between leaves orphan records that recovery re-enqueues on
	// the next boot. The whole batch costs one lock acquisition and one
	// fsync.
	journalIDs, err := s.Durable.AppendEventBatchTenant(sp.wire, docs)
	if err != nil {
		http.Error(w, "event not journaled: "+err.Error(), http.StatusInternalServerError)
		return
	}
	evs := make([]events.Event, len(docs))
	for i, doc := range docs {
		evs[i] = events.NewAdmitted(doc, admittedAt)
		evs[i].Tenant = sp.wire
	}
	out := s.Stream.PublishBatch(evs)
	s.Durable.AckEvents(journalIDs)
	s.metAdmitted.With(sp.wire).Add(int64(len(out)))
	s.metBatchSize.Observe(float64(len(out)))
	for _, ev := range out {
		fmt.Fprintf(w, "%d\n", ev.Seq)
	}
	if len(forwarded) > 0 {
		fmt.Fprintf(w, "forwarded to %s\n", strings.Join(forwarded, " "))
	}
}

// Overload is the documented JSON body of a 429 from POST /events: the
// node's admission limit (Config.MaxPendingEvents) is full and the caller
// should retry after RetryAfterSeconds. Cluster peers use the shape to
// tell shed load (retry later, nothing is wrong) from hard failure.
type Overload struct {
	Error             string `json:"error"` // always "overloaded"
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

func writeOverloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(Overload{Error: "overloaded", RetryAfterSeconds: 1})
}

// ruleInfos aggregates every space's RuleInfos (default tenant first,
// then tenants in id order) plus the owner stamp: on clustered
// deployments every locally registered rule is owned by this node.
// Single-tenant, single-node output is unchanged (both fields are
// omitempty).
func (s *System) ruleInfos() []engine.RuleInfo {
	var infos []engine.RuleInfo
	for _, sp := range s.snapshotSpaces() {
		infos = append(infos, sp.Engine.RuleInfos()...)
	}
	if s.Cluster != nil {
		for i := range infos {
			infos[i].Owner = s.Cluster.ID()
		}
	}
	return infos
}

// engineStats sums every space's engine counters — the node-level view
// /engine/stats and /healthz report.
func (s *System) engineStats() engine.Stats {
	var st engine.Stats
	for _, sp := range s.snapshotSpaces() {
		es := sp.Engine.Stats()
		st.RulesRegistered += es.RulesRegistered
		st.InstancesCreated += es.InstancesCreated
		st.InstancesCompleted += es.InstancesCompleted
		st.InstancesDied += es.InstancesDied
		st.ActionRuns += es.ActionRuns
	}
	return st
}

// Health is the /healthz response body. Ready is the load-balancer
// signal: it turns false (and Status "degraded") while the node is
// still alive but admission pressure approaches the configured
// -max-pending-events limit, so traffic drains away before hard 429
// shedding starts. Nodes without an admission limit are always ready.
type Health struct {
	Status             string          `json:"status"`
	Ready              bool            `json:"ready"`
	UptimeSeconds      float64         `json:"uptime_seconds"`
	Rules              int             `json:"rules"`
	Languages          int             `json:"languages"`
	InstancesCreated   int             `json:"instances_created"`
	InstancesCompleted int             `json:"instances_completed"`
	InstancesDied      int             `json:"instances_died"`
	Notifications      int             `json:"notifications"`
	Store              *store.Health    `json:"store,omitempty"`     // absent for in-memory deployments
	Cluster            *cluster.Status  `json:"cluster,omitempty"`   // absent for single-node deployments
	Admission          *AdmissionHealth `json:"admission,omitempty"` // absent without -max-pending-events
	Tenants            []TenantHealth   `json:"tenants,omitempty"`   // absent while only the default space is live
}

// AdmissionHealth reports event-admission pressure: how many POST
// /events requests hold a slot right now, the configured cap, the
// pending level at which Ready degrades, and the engine's worker-queue
// depth (0 for synchronous engines).
type AdmissionHealth struct {
	Pending          int `json:"pending"`
	MaxPendingEvents int `json:"max_pending_events"`
	ReadyThreshold   int `json:"ready_threshold"`
	EngineQueueDepth int `json:"engine_queue_depth"`
}

// readyThreshold is the pending-admissions level at which /healthz
// degrades: 90% of the cap, but at least 1 so a tiny cap still has a
// degraded band before outright 429s.
func readyThreshold(maxPending int) int {
	t := maxPending * 9 / 10
	if t < 1 {
		t = 1
	}
	return t
}

func (s *System) healthz(w http.ResponseWriter, r *http.Request) {
	spaces := s.snapshotSpaces()
	st := s.engineStats()
	h := Health{
		Status:             "ok",
		Ready:              true,
		UptimeSeconds:      time.Since(s.started).Seconds(),
		Rules:              st.RulesRegistered,
		Languages:          len(s.GRH.Languages()),
		InstancesCreated:   st.InstancesCreated,
		InstancesCompleted: st.InstancesCompleted,
		InstancesDied:      st.InstancesDied,
		Notifications:      len(s.Notifier.Sent()),
	}
	if len(spaces) > 1 {
		for _, sp := range spaces {
			h.Tenants = append(h.Tenants, TenantHealth{
				ID:            sp.ID,
				Rules:         sp.Tenant.Rules(),
				PendingEvents: sp.Tenant.Pending(),
			})
		}
	}
	if s.maxPending > 0 {
		depth := 0
		for _, sp := range spaces {
			depth += sp.Engine.QueueDepth()
		}
		a := AdmissionHealth{
			Pending:          len(s.eventSlots),
			MaxPendingEvents: s.maxPending,
			ReadyThreshold:   readyThreshold(s.maxPending),
			EngineQueueDepth: depth,
		}
		h.Admission = &a
		if a.Pending >= a.ReadyThreshold {
			h.Ready = false
			h.Status = "degraded"
		}
	}
	if s.Durable != nil {
		sh := s.Durable.Health()
		h.Store = &sh
	}
	if s.Cluster != nil {
		cs := s.Cluster.Status()
		h.Cluster = &cs
	}
	writeJSON(w, h)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Close shuts the system down gracefully: the engine stops accepting
// detections and drains every in-flight rule instance, then the event
// services release their stream subscriptions, and finally the durable
// store (if any) snapshots, compacts and closes its journal. Safe to call
// more than once.
func (s *System) Close() {
	if s.Cluster != nil {
		// First: stop probing, forwarding and journal shipping before the
		// engine and store they feed off shut down.
		s.Cluster.Close()
	}
	// Unsubscribe every space's event services (stop producing detection
	// tasks), then drain the partition workers into the still-open
	// engines, then drain each engine's rule instances.
	spaces := s.snapshotSpaces()
	for _, sp := range spaces {
		sp.Matcher.Close()
		sp.Snoop.Close()
	}
	if s.pool != nil {
		s.pool.Close()
	}
	for _, sp := range spaces {
		sp.Engine.Close()
	}
	if s.Durable != nil {
		if err := s.Durable.Close(); err != nil {
			s.Log.Warn("store close", "error", err.Error())
		}
	}
}

// Recover replays the durable store's reconstructed state into this
// system: every recovered rule document is re-parsed and re-registered
// through the regular ruleml.Analyzer validation path (restoring its
// original id, registration time and tenant space), and every orphaned
// event — accepted before the crash but never dispatched — is
// re-published on the stream under its journaled tenant. Records that
// fail to parse or re-register are skipped with a logged, metered
// warning. Call it once, after NewLocal and before serving traffic; a nil
// store (in-memory deployment) is a no-op.
func (s *System) Recover() (store.RecoveryStats, error) {
	if s.Durable == nil {
		return store.RecoveryStats{}, nil
	}
	return s.Durable.RecoverTenants(s.registerRecovered, s.publishRecovered)
}

// Distribute re-registers every component language in the GRH as a REMOTE
// service at baseURL (as produced by Mux), turning the in-process wiring
// into the distributed architecture of Fig. 3: all component communication
// then travels over HTTP through the wire protocol. The engine keeps
// receiving detections locally unless replyTo routing is configured on the
// services' Deliverer.
func (s *System) Distribute(baseURL string) error {
	remote := []grh.Descriptor{
		{Language: services.MatcherNS, Name: "atomic event matcher (remote)", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/matcher"},
		{Language: snoop.NS, Name: "SNOOP detection service (remote)", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/snoop"},
		{Language: services.XQueryNS, Name: "XQuery service (remote)", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/xquery"},
		{Language: services.DatalogNS, Name: "Datalog service (remote)", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/datalog"},
		{Language: services.TestNS, Name: "test evaluator (remote)", Kinds: []ruleml.ComponentKind{ruleml.TestComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/test"},
		{Language: services.ActionNS, Name: "action executor (remote)", Kinds: []ruleml.ComponentKind{ruleml.ActionComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/action"},
	}
	for _, d := range remote {
		if err := s.GRH.Register(d); err != nil {
			return err
		}
	}
	return nil
}
