// Package system wires the complete service-oriented architecture of
// Fig. 3: the ECA engine, the Generic Request Handler, and the component
// language services — either fully in-process (every service a local
// grh.Service) or distributed, with each service behind a real HTTP
// endpoint and the engine receiving detection callbacks over HTTP.
package system

import (
	"fmt"
	"net/http"
	"sync"

	"repro/internal/bindings"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/snoop"
	"repro/internal/xmltree"
)

// Notification is one message "sent" by the domain action executor.
type Notification struct {
	Message *xmltree.Node
	Tuple   bindings.Tuple
}

// Notifier collects sent messages (the customer-facing side of the
// car-rental example). Safe for concurrent use.
type Notifier struct {
	mu   sync.Mutex
	sent []Notification
	hook func(Notification)
}

// Send records a message.
func (n *Notifier) Send(msg *xmltree.Node, t bindings.Tuple) {
	n.mu.Lock()
	n.sent = append(n.sent, Notification{msg, t})
	h := n.hook
	n.mu.Unlock()
	if h != nil {
		h(Notification{msg, t})
	}
}

// Sent returns a snapshot of all messages sent so far.
func (n *Notifier) Sent() []Notification {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Notification, len(n.sent))
	copy(out, n.sent)
	return out
}

// Reset clears the collected messages.
func (n *Notifier) Reset() {
	n.mu.Lock()
	n.sent = nil
	n.mu.Unlock()
}

// OnSend installs a hook invoked for every message.
func (n *Notifier) OnSend(h func(Notification)) {
	n.mu.Lock()
	n.hook = h
	n.mu.Unlock()
}

// Config parameterizes a System.
type Config struct {
	// Datalog is the rulebase for the LP-style query service; nil for an
	// empty one.
	Datalog *datalog.Program
	// Namespaces are offered to query services for prefixed name tests.
	Namespaces map[string]string
	// Logger receives engine traces.
	Logger engine.Logger
	// Trace receives GRH traffic.
	Trace grh.TraceFunc
}

// System is one wired deployment of the architecture.
type System struct {
	Stream   *events.Stream
	Store    *services.DocStore
	GRH      *grh.GRH
	Engine   *engine.Engine
	Notifier *Notifier

	Matcher *services.EventMatcher
	Snoop   *services.SnoopService
	XQuery  *services.XQueryService
	Datalog *services.DatalogService
	Actions *services.ActionExecutor
}

// NewLocal wires every service in-process, the deployment used by the
// quickstart example and most tests.
func NewLocal(cfg Config) (*System, error) {
	s := &System{
		Stream:   events.NewStream(),
		Store:    services.NewDocStore(),
		GRH:      grh.New(),
		Notifier: &Notifier{},
	}
	if cfg.Trace != nil {
		s.GRH.SetTrace(cfg.Trace)
	}
	var engineOpts []engine.Option
	if cfg.Logger != nil {
		engineOpts = append(engineOpts, engine.WithLogger(cfg.Logger))
	}
	s.Engine = engine.New(s.GRH, engineOpts...)
	deliver := &services.Deliverer{Local: s.Engine.OnDetection}

	s.Matcher = services.NewEventMatcher(s.Stream, deliver)
	s.Snoop = services.NewSnoopService(s.Stream, deliver)
	s.XQuery = services.NewXQueryService(s.Store, cfg.Namespaces)
	s.Actions = services.NewActionExecutor(s.Store, s.Stream, s.Notifier.Send)

	prog := cfg.Datalog
	if prog == nil {
		prog = &datalog.Program{}
	}
	dl, err := services.NewDatalogService(prog)
	if err != nil {
		return nil, fmt.Errorf("system: datalog rulebase: %w", err)
	}
	s.Datalog = dl

	regs := []grh.Descriptor{
		{Language: services.MatcherNS, Name: "atomic event matcher", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Local: s.Matcher},
		{Language: snoop.NS, Name: "SNOOP detection service", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Local: s.Snoop},
		{Language: services.XQueryNS, Name: "XQuery service", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Local: s.XQuery},
		{Language: services.DatalogNS, Name: "Datalog service", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Local: s.Datalog},
		{Language: services.TestNS, Name: "test evaluator", Kinds: []ruleml.ComponentKind{ruleml.TestComponent}, FrameworkAware: true, Local: services.TestEvaluator{}},
		{Language: services.ActionNS, Name: "action executor", Kinds: []ruleml.ComponentKind{ruleml.ActionComponent}, FrameworkAware: true, Local: s.Actions},
	}
	for _, d := range regs {
		if err := s.GRH.Register(d); err != nil {
			return nil, err
		}
	}
	s.GRH.SetDefault(ruleml.EventComponent, services.MatcherNS)
	s.GRH.SetDefault(ruleml.QueryComponent, services.XQueryNS)
	s.GRH.SetDefault(ruleml.TestComponent, services.TestNS)
	s.GRH.SetDefault(ruleml.ActionComponent, services.ActionNS)
	return s, nil
}

// Mux builds the HTTP surface of a distributed deployment: every component
// service mounted under its conventional path, plus the engine's detection
// callback and rule/event management endpoints used by ecactl.
//
//	POST /services/matcher    eca:request (register/unregister)
//	POST /services/snoop      eca:request
//	POST /services/xquery     eca:request (query)
//	POST /services/datalog    eca:request (query)
//	POST /services/test       eca:request (test)
//	POST /services/action     eca:request (action)
//	GET  /opaque/store?query= raw XPath  (framework-unaware, Fig. 9)
//	GET  /opaque/xquery?query= raw XQuery (framework-unaware, Fig. 10)
//	POST /engine/detect       log:answers (detection callback)
//	POST /engine/rules        eca:rule document → registers the rule
//	POST /events              event payload → published on the stream
//	GET  /engine/stats        plain-text counters
func (s *System) Mux(opaqueDoc *xmltree.Node, namespaces map[string]string) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/services/matcher", services.Handler(s.Matcher))
	mux.Handle("/services/snoop", services.Handler(s.Snoop))
	mux.Handle("/services/xquery", services.Handler(s.XQuery))
	mux.Handle("/services/datalog", services.Handler(s.Datalog))
	mux.Handle("/services/test", services.Handler(services.TestEvaluator{}))
	mux.Handle("/services/action", services.Handler(s.Actions))
	if opaqueDoc != nil {
		mux.Handle("/opaque/store", services.NewOpaqueXMLStore(opaqueDoc, namespaces))
	}
	mux.Handle("/opaque/xquery", services.NewOpaqueXQueryNode(s.Store, namespaces))
	mux.HandleFunc("/engine/detect", func(w http.ResponseWriter, r *http.Request) {
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a, err := protocol.DecodeAnswers(doc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.Engine.OnDetection(a)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/engine/rules", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			for _, id := range s.Engine.Rules() {
				fmt.Fprintln(w, id)
			}
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST an eca:rule document, or GET the rule list", http.StatusMethodNotAllowed)
			return
		}
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rule, err := ruleml.Parse(doc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if err := s.Engine.Register(rule); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		fmt.Fprintln(w, rule.ID)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST an event document", http.StatusMethodNotAllowed)
			return
		}
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ev := s.Stream.Publish(events.New(doc))
		fmt.Fprintf(w, "%d\n", ev.Seq)
	})
	mux.HandleFunc("/engine/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Engine.Stats()
		fmt.Fprintf(w, "rules %d\ninstances_created %d\ninstances_completed %d\ninstances_died %d\naction_runs %d\nnotifications %d\n",
			st.RulesRegistered, st.InstancesCreated, st.InstancesCompleted, st.InstancesDied, st.ActionRuns, len(s.Notifier.Sent()))
	})
	return mux
}

// Distribute re-registers every component language in the GRH as a REMOTE
// service at baseURL (as produced by Mux), turning the in-process wiring
// into the distributed architecture of Fig. 3: all component communication
// then travels over HTTP through the wire protocol. The engine keeps
// receiving detections locally unless replyTo routing is configured on the
// services' Deliverer.
func (s *System) Distribute(baseURL string) error {
	remote := []grh.Descriptor{
		{Language: services.MatcherNS, Name: "atomic event matcher (remote)", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/matcher"},
		{Language: snoop.NS, Name: "SNOOP detection service (remote)", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/snoop"},
		{Language: services.XQueryNS, Name: "XQuery service (remote)", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/xquery"},
		{Language: services.DatalogNS, Name: "Datalog service (remote)", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/datalog"},
		{Language: services.TestNS, Name: "test evaluator (remote)", Kinds: []ruleml.ComponentKind{ruleml.TestComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/test"},
		{Language: services.ActionNS, Name: "action executor (remote)", Kinds: []ruleml.ComponentKind{ruleml.ActionComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/action"},
	}
	for _, d := range remote {
		if err := s.GRH.Register(d); err != nil {
			return err
		}
	}
	return nil
}
