// Package system wires the complete service-oriented architecture of
// Fig. 3: the ECA engine, the Generic Request Handler, and the component
// language services — either fully in-process (every service a local
// grh.Service) or distributed, with each service behind a real HTTP
// endpoint and the engine receiving detection callbacks over HTTP.
package system

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/bindings"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/snoop"
	"repro/internal/store"
	"repro/internal/xmltree"
)

// Notification is one message "sent" by the domain action executor.
type Notification struct {
	Message *xmltree.Node
	Tuple   bindings.Tuple
}

// Notifier collects sent messages (the customer-facing side of the
// car-rental example). Safe for concurrent use.
type Notifier struct {
	mu   sync.Mutex
	sent []Notification
	hook func(Notification)
}

// Send records a message.
func (n *Notifier) Send(msg *xmltree.Node, t bindings.Tuple) {
	n.mu.Lock()
	n.sent = append(n.sent, Notification{msg, t})
	h := n.hook
	n.mu.Unlock()
	if h != nil {
		h(Notification{msg, t})
	}
}

// Sent returns a snapshot of all messages sent so far.
func (n *Notifier) Sent() []Notification {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Notification, len(n.sent))
	copy(out, n.sent)
	return out
}

// Reset clears the collected messages.
func (n *Notifier) Reset() {
	n.mu.Lock()
	n.sent = nil
	n.mu.Unlock()
}

// OnSend installs a hook invoked for every message.
func (n *Notifier) OnSend(h func(Notification)) {
	n.mu.Lock()
	n.hook = h
	n.mu.Unlock()
}

// Config parameterizes a System.
type Config struct {
	// Datalog is the rulebase for the LP-style query service; nil for an
	// empty one.
	Datalog *datalog.Program
	// Namespaces are offered to query services for prefixed name tests.
	Namespaces map[string]string
	// Logger receives engine traces.
	Logger engine.Logger
	// Trace receives GRH traffic.
	Trace grh.TraceFunc
	// Obs is the observability hub instrumenting the engine, GRH and
	// services; nil runs the system uninstrumented.
	Obs *obs.Hub
	// Log is the structured logger shared by the engine, GRH and service
	// handlers; every record it emits for a live rule instance carries the
	// instance's trace_id. nil disables structured logging.
	Log *obs.Logger
	// PProf mounts net/http/pprof profiling handlers under /debug/pprof/
	// on the Mux.
	PProf bool
	// HTTPTimeout bounds every outbound service request made by the GRH
	// and the deliverer; grh.DefaultTimeout when zero.
	HTTPTimeout time.Duration
	// Retry enables GRH retry with exponential backoff for idempotent
	// dispatches (queries and tests; never actions). The zero value
	// disables retry; grh.DefaultRetryPolicy is a sane starting point.
	Retry grh.RetryPolicy
	// Breaker enables the GRH's per-endpoint circuit breaker. The zero
	// value disables it; grh.DefaultBreakerPolicy is a sane starting
	// point.
	Breaker grh.BreakerPolicy
	// Cache enables the GRH answer cache and request coalescing for
	// idempotent dispatches (queries and tests; never actions). The zero
	// value disables it; grh.DefaultCachePolicy is a sane starting point.
	Cache grh.CachePolicy
	// Partition enables partitioned parallel dispatch: large input
	// relations of idempotent dispatches are sharded and dispatched
	// concurrently. The zero value disables it;
	// grh.DefaultPartitionPolicy is a sane starting point.
	Partition grh.PartitionPolicy
	// Store is the durability subsystem (write-ahead rule/event journal,
	// snapshots, crash recovery — see internal/store and
	// docs/DURABILITY.md). nil keeps the engine purely in-memory, the
	// historical behaviour. Call System.Recover after NewLocal to replay
	// the recovered state into the engine.
	Store *store.Store
}

// System is one wired deployment of the architecture.
type System struct {
	Stream   *events.Stream
	Store    *services.DocStore
	GRH      *grh.GRH
	Engine   *engine.Engine
	Notifier *Notifier
	Obs      *obs.Hub
	Log      *obs.Logger
	Durable  *store.Store // nil when the deployment is in-memory only

	pprof bool

	Matcher *services.EventMatcher
	Snoop   *services.SnoopService
	XQuery  *services.XQueryService
	Datalog *services.DatalogService
	Actions *services.ActionExecutor

	started time.Time
}

// NewLocal wires every service in-process, the deployment used by the
// quickstart example and most tests.
func NewLocal(cfg Config) (*System, error) {
	s := &System{
		Stream:   events.NewStream(),
		Store:    services.NewDocStore(),
		GRH: grh.New(grh.WithObs(cfg.Obs), grh.WithTimeout(cfg.HTTPTimeout),
			grh.WithRetry(cfg.Retry), grh.WithBreaker(cfg.Breaker),
			grh.WithCache(cfg.Cache), grh.WithPartition(cfg.Partition),
			grh.WithLog(cfg.Log)),
		Notifier: &Notifier{},
		Obs:      cfg.Obs,
		Log:      cfg.Log,
		Durable:  cfg.Store,
		pprof:    cfg.PProf,
		started:  time.Now(),
	}
	if cfg.Trace != nil {
		s.GRH.SetTrace(cfg.Trace)
	}
	engineOpts := []engine.Option{engine.WithObs(cfg.Obs), engine.WithLog(cfg.Log)}
	if cfg.Logger != nil {
		engineOpts = append(engineOpts, engine.WithLogger(cfg.Logger))
	}
	if cfg.Store != nil {
		engineOpts = append(engineOpts, engine.WithJournal(cfg.Store))
	}
	s.Engine = engine.New(s.GRH, engineOpts...)
	deliver := &services.Deliverer{Local: s.Engine.OnDetection, Obs: cfg.Obs}

	s.Matcher = services.NewEventMatcher(s.Stream, deliver)
	s.Snoop = services.NewSnoopService(s.Stream, deliver)
	s.Snoop.SetObs(cfg.Obs)
	s.XQuery = services.NewXQueryService(s.Store, cfg.Namespaces)
	s.Actions = services.NewActionExecutor(s.Store, s.Stream, s.Notifier.Send)

	prog := cfg.Datalog
	if prog == nil {
		prog = &datalog.Program{}
	}
	dl, err := services.NewDatalogService(prog)
	if err != nil {
		return nil, fmt.Errorf("system: datalog rulebase: %w", err)
	}
	s.Datalog = dl

	regs := []grh.Descriptor{
		{Language: services.MatcherNS, Name: "atomic event matcher", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Local: s.Matcher},
		{Language: snoop.NS, Name: "SNOOP detection service", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Local: s.Snoop},
		{Language: services.XQueryNS, Name: "XQuery service", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Local: s.XQuery},
		{Language: services.DatalogNS, Name: "Datalog service", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Local: s.Datalog},
		{Language: services.TestNS, Name: "test evaluator", Kinds: []ruleml.ComponentKind{ruleml.TestComponent}, FrameworkAware: true, Local: services.TestEvaluator{}},
		{Language: services.ActionNS, Name: "action executor", Kinds: []ruleml.ComponentKind{ruleml.ActionComponent}, FrameworkAware: true, Local: s.Actions},
	}
	for _, d := range regs {
		if err := s.GRH.Register(d); err != nil {
			return nil, err
		}
	}
	s.GRH.SetDefault(ruleml.EventComponent, services.MatcherNS)
	s.GRH.SetDefault(ruleml.QueryComponent, services.XQueryNS)
	s.GRH.SetDefault(ruleml.TestComponent, services.TestNS)
	s.GRH.SetDefault(ruleml.ActionComponent, services.ActionNS)
	return s, nil
}

// Mux builds the HTTP surface of a distributed deployment: every component
// service mounted under its conventional path, plus the engine's detection
// callback and rule/event management endpoints used by ecactl.
//
//	POST /services/matcher    eca:request (register/unregister)
//	POST /services/snoop      eca:request
//	POST /services/xquery     eca:request (query)
//	POST /services/datalog    eca:request (query)
//	POST /services/test       eca:request (test)
//	POST /services/action     eca:request (action)
//	GET  /opaque/store?query= raw XPath  (framework-unaware, Fig. 9)
//	GET  /opaque/xquery?query= raw XQuery (framework-unaware, Fig. 10)
//	POST /engine/detect       log:answers (detection callback)
//	POST /engine/rules        eca:rule document → registers the rule
//	GET  /engine/rules        rule bookkeeping as JSON (?format=ids for the plain id list)
//	GET  /engine/rules/{id}   one rule's bookkeeping as JSON
//	DELETE /engine/rules/{id} unregisters the rule
//	POST /events              event payload → journaled (when durable) and published
//	GET  /engine/stats        plain-text counters
//	GET  /healthz             liveness + rule/service counts as JSON (incl. store section)
//	GET  /metrics             Prometheus text exposition (when Obs is set)
//	GET  /debug/traces        rule-instance span traces as JSON (when Obs is set)
//	GET  /debug/pprof/        runtime profiling (when Config.PProf is set)
func (s *System) Mux(opaqueDoc *xmltree.Node, namespaces map[string]string) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/services/matcher", services.NewHandler(s.Matcher, s.Obs, s.Log))
	mux.Handle("/services/snoop", services.NewHandler(s.Snoop, s.Obs, s.Log))
	mux.Handle("/services/xquery", services.NewHandler(s.XQuery, s.Obs, s.Log))
	mux.Handle("/services/datalog", services.NewHandler(s.Datalog, s.Obs, s.Log))
	mux.Handle("/services/test", services.NewHandler(services.TestEvaluator{}, s.Obs, s.Log))
	mux.Handle("/services/action", services.NewHandler(s.Actions, s.Obs, s.Log))
	if opaqueDoc != nil {
		mux.Handle("/opaque/store", services.NewOpaqueXMLStore(opaqueDoc, namespaces).SetObs(s.Obs))
	}
	mux.Handle("/opaque/xquery", services.NewOpaqueXQueryNode(s.Store, namespaces).SetObs(s.Obs))
	mux.HandleFunc("/engine/detect", func(w http.ResponseWriter, r *http.Request) {
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a, err := protocol.DecodeAnswers(doc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.Engine.OnDetection(a)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/engine/rules", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			if r.URL.Query().Get("format") == "ids" {
				// Plain-text id list, the historical ecactl contract.
				for _, id := range s.Engine.Rules() {
					fmt.Fprintln(w, id)
				}
				return
			}
			writeJSON(w, struct {
				Rules []engine.RuleInfo `json:"rules"`
			}{s.Engine.RuleInfos()})
		case http.MethodPost:
			doc, err := xmltree.Parse(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			rule, err := ruleml.Parse(doc)
			if err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			if err := s.Engine.Register(rule); err != nil {
				http.Error(w, err.Error(), http.StatusUnprocessableEntity)
				return
			}
			fmt.Fprintln(w, rule.ID)
		default:
			http.Error(w, "POST an eca:rule document, GET the rule list, or DELETE /engine/rules/{id}", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/engine/rules/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/engine/rules/")
		if id == "" {
			http.Error(w, "missing rule id", http.StatusNotFound)
			return
		}
		switch r.Method {
		case http.MethodGet:
			for _, info := range s.Engine.RuleInfos() {
				if info.ID == id {
					writeJSON(w, info)
					return
				}
			}
			http.Error(w, fmt.Sprintf("no rule %q", id), http.StatusNotFound)
		case http.MethodDelete:
			if err := s.Engine.Unregister(id); err != nil {
				if strings.Contains(err.Error(), "no rule") {
					http.Error(w, err.Error(), http.StatusNotFound)
					return
				}
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			fmt.Fprintln(w, id)
		default:
			http.Error(w, "GET or DELETE a rule id", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST an event document", http.StatusMethodNotAllowed)
			return
		}
		doc, err := xmltree.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Journal the accepted event before dispatch, acknowledge after:
		// a crash in between leaves an orphan record that recovery
		// re-enqueues on the next boot.
		journalID, err := s.Durable.AppendEvent(doc)
		if err != nil {
			http.Error(w, "event not journaled: "+err.Error(), http.StatusInternalServerError)
			return
		}
		ev := s.Stream.Publish(events.New(doc))
		s.Durable.AckEvent(journalID)
		fmt.Fprintf(w, "%d\n", ev.Seq)
	})
	mux.HandleFunc("/engine/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Engine.Stats()
		fmt.Fprintf(w, "rules %d\ninstances_created %d\ninstances_completed %d\ninstances_died %d\naction_runs %d\nnotifications %d\n",
			st.RulesRegistered, st.InstancesCreated, st.InstancesCompleted, st.InstancesDied, st.ActionRuns, len(s.Notifier.Sent()))
	})
	mux.HandleFunc("/healthz", s.healthz)
	if s.Obs != nil {
		mux.Handle("/metrics", s.Obs.MetricsHandler())
		mux.Handle("/debug/traces", s.Obs.TracesHandler())
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Health is the /healthz response body.
type Health struct {
	Status             string        `json:"status"`
	UptimeSeconds      float64       `json:"uptime_seconds"`
	Rules              int           `json:"rules"`
	Languages          int           `json:"languages"`
	InstancesCreated   int           `json:"instances_created"`
	InstancesCompleted int           `json:"instances_completed"`
	InstancesDied      int           `json:"instances_died"`
	Notifications      int           `json:"notifications"`
	Store              *store.Health `json:"store,omitempty"` // absent for in-memory deployments
}

func (s *System) healthz(w http.ResponseWriter, r *http.Request) {
	st := s.Engine.Stats()
	h := Health{
		Status:             "ok",
		UptimeSeconds:      time.Since(s.started).Seconds(),
		Rules:              len(s.Engine.Rules()),
		Languages:          len(s.GRH.Languages()),
		InstancesCreated:   st.InstancesCreated,
		InstancesCompleted: st.InstancesCompleted,
		InstancesDied:      st.InstancesDied,
		Notifications:      len(s.Notifier.Sent()),
	}
	if s.Durable != nil {
		sh := s.Durable.Health()
		h.Store = &sh
	}
	writeJSON(w, h)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Close shuts the system down gracefully: the engine stops accepting
// detections and drains every in-flight rule instance, then the event
// services release their stream subscriptions, and finally the durable
// store (if any) snapshots, compacts and closes its journal. Safe to call
// more than once.
func (s *System) Close() {
	s.Engine.Close()
	s.Matcher.Close()
	s.Snoop.Close()
	if s.Durable != nil {
		if err := s.Durable.Close(); err != nil {
			s.Log.Warn("store close", "error", err.Error())
		}
	}
}

// Recover replays the durable store's reconstructed state into this
// system: every recovered rule document is re-parsed and re-registered
// through the regular ruleml.Analyzer validation path (restoring its
// original id and registration time), and every orphaned event — accepted
// before the crash but never dispatched — is re-published on the stream.
// Records that fail to parse or re-register are skipped with a logged,
// metered warning. Call it once, after NewLocal and before serving
// traffic; a nil store (in-memory deployment) is a no-op.
func (s *System) Recover() (store.RecoveryStats, error) {
	if s.Durable == nil {
		return store.RecoveryStats{}, nil
	}
	return s.Durable.Recover(
		func(id string, doc *xmltree.Node, registered time.Time) error {
			rule, err := ruleml.Parse(doc)
			if err != nil {
				return err
			}
			rule.ID = id
			if err := s.Engine.Register(rule); err != nil {
				return err
			}
			s.Engine.SetRegistered(id, registered)
			return nil
		},
		func(doc *xmltree.Node) error {
			s.Stream.Publish(events.New(doc))
			return nil
		},
	)
}

// Distribute re-registers every component language in the GRH as a REMOTE
// service at baseURL (as produced by Mux), turning the in-process wiring
// into the distributed architecture of Fig. 3: all component communication
// then travels over HTTP through the wire protocol. The engine keeps
// receiving detections locally unless replyTo routing is configured on the
// services' Deliverer.
func (s *System) Distribute(baseURL string) error {
	remote := []grh.Descriptor{
		{Language: services.MatcherNS, Name: "atomic event matcher (remote)", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/matcher"},
		{Language: snoop.NS, Name: "SNOOP detection service (remote)", Kinds: []ruleml.ComponentKind{ruleml.EventComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/snoop"},
		{Language: services.XQueryNS, Name: "XQuery service (remote)", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/xquery"},
		{Language: services.DatalogNS, Name: "Datalog service (remote)", Kinds: []ruleml.ComponentKind{ruleml.QueryComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/datalog"},
		{Language: services.TestNS, Name: "test evaluator (remote)", Kinds: []ruleml.ComponentKind{ruleml.TestComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/test"},
		{Language: services.ActionNS, Name: "action executor (remote)", Kinds: []ruleml.ComponentKind{ruleml.ActionComponent}, FrameworkAware: true, Endpoint: baseURL + "/services/action"},
	}
	for _, d := range remote {
		if err := s.GRH.Register(d); err != nil {
			return err
		}
	}
	return nil
}
