package system

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/ruleml"
	"repro/internal/store"
	"repro/internal/xmltree"
)

func durableSystem(t *testing.T, dir string, hub *obs.Hub) *System {
	t.Helper()
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncAlways, Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewLocal(Config{Store: st, Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Recover(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// A rule registered over HTTP in one "process" is live again after a
// crash (no Close) and restart over the same data dir, and fires on a
// fresh event.
func TestSystemRecoversRulesAfterCrash(t *testing.T) {
	dir := t.TempDir()

	sys1 := durableSystem(t, dir, nil)
	srv1 := httptest.NewServer(sys1.Mux(nil, nil))
	resp, err := http.Post(srv1.URL+"/engine/rules", "application/xml", strings.NewReader(simpleRuleXML("durable-rule")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("register = %d", resp.StatusCode)
	}
	srv1.Close()
	// Crash: no sys1.Close(), the journal is all that survives.

	hub := obs.NewHub()
	sys2 := durableSystem(t, dir, hub)
	defer sys2.Close()
	if got := sys2.Engine.Rules(); len(got) != 1 || got[0] != "durable-rule" {
		t.Fatalf("recovered rules = %v", got)
	}
	// The recovered rule must be fully wired: a fresh event fires it.
	srv2 := httptest.NewServer(sys2.Mux(nil, nil))
	defer srv2.Close()
	resp, err = http.Post(srv2.URL+"/events", "application/xml", strings.NewReader(`<t:ping xmlns:t="`+tNS+`" x="9"/>`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := len(sys2.Notifier.Sent()); got != 1 {
		t.Fatalf("recovered rule did not fire: %d notifications", got)
	}

	var exp strings.Builder
	hub.Metrics().WritePrometheus(&exp)
	if !strings.Contains(exp.String(), "store_recovery_rules_total 1") {
		t.Errorf("recovery not metered:\n%s", exp.String())
	}
}

// An event journaled but never dispatched (orphaned by a crash between
// accept and publish) is re-enqueued on recovery and drives a rule
// instance to completion.
func TestSystemReplaysOrphanedEvent(t *testing.T) {
	dir := t.TempDir()

	sys1 := durableSystem(t, dir, nil)
	rule := ruleml.MustParse(simpleRuleXML("orphan-rule"))
	if err := sys1.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	// Accept an event into the journal without dispatching it — the state
	// a crash between AppendEvent and Publish leaves behind.
	ev, err := xmltree.ParseString(`<t:ping xmlns:t="` + tNS + `" x="42"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys1.Durable.AppendEvent(ev); err != nil {
		t.Fatal(err)
	}
	// Crash.

	sys2 := durableSystem(t, dir, nil)
	defer sys2.Close()
	sys2.Engine.Wait()
	sent := sys2.Notifier.Sent()
	if len(sent) != 1 || !strings.Contains(sent[0].Message.String(), `x="42"`) {
		t.Fatalf("orphaned event did not complete an instance: %+v", sent)
	}
	st := sys2.Engine.Stats()
	if st.InstancesCompleted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if h := sys2.Durable.Health(); h.RecoveredEvents != 1 || h.PendingEvents != 0 {
		t.Fatalf("store health = %+v", h)
	}

	// Third boot: the replayed event must not fire again.
	sys2.Close()
	sys3 := durableSystem(t, dir, nil)
	defer sys3.Close()
	sys3.Engine.Wait()
	if got := len(sys3.Notifier.Sent()); got != 0 {
		t.Fatalf("event replayed twice: %d notifications", got)
	}
}

// An unregistered rule stays gone after restart, and /healthz exposes the
// store section for durable deployments.
func TestSystemUnregisterDurableAndHealthz(t *testing.T) {
	dir := t.TempDir()

	sys1 := durableSystem(t, dir, nil)
	srv1 := httptest.NewServer(sys1.Mux(nil, nil))
	for _, id := range []string{"keep", "drop"} {
		resp, err := http.Post(srv1.URL+"/engine/rules", "application/xml", strings.NewReader(simpleRuleXML(id)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	req, _ := http.NewRequest(http.MethodDelete, srv1.URL+"/engine/rules/drop", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	srv1.Close()
	// Crash.

	sys2 := durableSystem(t, dir, nil)
	defer sys2.Close()
	if got := sys2.Engine.Rules(); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("rules after restart = %v", got)
	}

	srv2 := httptest.NewServer(sys2.Mux(nil, nil))
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, body)
	}
	if h.Store == nil || h.Store.Rules != 1 || h.Store.RecoveredRules != 1 || h.Store.Fsync != "always" {
		t.Fatalf("healthz store section = %+v", h.Store)
	}
}

// The recovered registration time is the original one from the journal,
// not the restart instant.
func TestRecoveryRestoresRegistrationTime(t *testing.T) {
	dir := t.TempDir()
	sys1 := durableSystem(t, dir, nil)
	if err := sys1.Engine.Register(ruleml.MustParse(simpleRuleXML("timed"))); err != nil {
		t.Fatal(err)
	}
	infos := sys1.Engine.RuleInfos()
	if len(infos) != 1 {
		t.Fatal("no rule info")
	}
	orig := infos[0].Registered

	time.Sleep(10 * time.Millisecond)
	sys2 := durableSystem(t, dir, nil)
	defer sys2.Close()
	infos2 := sys2.Engine.RuleInfos()
	if len(infos2) != 1 || !infos2[0].Registered.Equal(orig) {
		t.Fatalf("registered = %v, want original %v", infos2[0].Registered, orig)
	}
}
