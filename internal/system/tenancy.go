// Multi-tenant rule spaces. A System is composed of one Space per tenant:
// a private engine, atomic event matcher and SNOOP detector sharing the
// system's stream, GRH (with its answer cache and compile caches), document
// store and detector pool. The default tenant's space is the system the
// paper describes — its wire form is the empty string everywhere (event
// stamps, journal frames, metric labels, protocol documents), which keeps
// tenant-less deployments byte-identical with builds that predate
// multi-tenancy. See docs/MULTITENANCY.md.
package system

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/tenant"
	"repro/internal/xmltree"
)

// Space is one tenant's rule space: the tenant's engine, detection
// services and quota state. Spaces are created on first use (a tenant
// exists as soon as a rule or event names it) and live until the system
// closes.
type Space struct {
	// ID is the external tenant id ("public" unless -default-tenant says
	// otherwise).
	ID string
	// wire is the tenant's canonical internal form: the empty string for
	// the default tenant, the tenant id otherwise.
	wire string
	// Tenant holds the tenant's quota state (rule count, pending events,
	// event-rate bucket).
	Tenant *tenant.Tenant

	Engine  *engine.Engine
	Matcher *services.EventMatcher
	Snoop   *services.SnoopService
}

// Wire returns the tenant's wire form: "" for the default tenant — the
// value stamped on events, journal frames and metric labels.
func (sp *Space) Wire() string { return sp.wire }

// wireFor maps a canonical (full) tenant id to its wire form.
func (s *System) wireFor(full string) string {
	if full == s.Tenants.DefaultID() {
		return ""
	}
	return full
}

// spaceFor resolves an externally supplied tenant id — or a wire form;
// both canonicalize the same way — to its rule space, creating the space
// (and the tenant, under the registry's declared or wildcard quotas) on
// first use. The empty string is the default tenant.
func (s *System) spaceFor(name string) (*Space, error) {
	full := s.Tenants.Canonical(name)
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if sp := s.spaces[s.wireFor(full)]; sp != nil {
		return sp, nil
	}
	return s.newSpaceLocked(full)
}

// newSpaceLocked builds a tenant's space: an engine journaling through the
// store's tenant-scoped view, and matcher/SNOOP services whose tenant
// filter drops foreign events before any stateful detector sees them. The
// caller holds s.tenantMu.
func (s *System) newSpaceLocked(full string) (*Space, error) {
	ten, err := s.Tenants.Resolve(full)
	if err != nil {
		return nil, err
	}
	wire := s.wireFor(full)
	opts := append([]engine.Option{}, s.engineBase...)
	opts = append(opts, engine.WithTenant(wire))
	if s.Durable != nil {
		opts = append(opts, engine.WithJournal(s.Durable.Scoped(wire)))
	}
	eng := engine.New(s.GRH, opts...)
	deliver := &services.Deliverer{Local: eng.OnDetection, Obs: s.Obs}
	dopts := append([]services.DetectorOption{}, s.detBase...)
	dopts = append(dopts, services.WithTenantFilter(wire))
	matcher := services.NewEventMatcher(s.Stream, deliver, dopts...)
	sn := services.NewSnoopService(s.Stream, deliver, dopts...)
	sn.SetObs(s.Obs)
	sp := &Space{ID: full, wire: wire, Tenant: ten, Engine: eng, Matcher: matcher, Snoop: sn}
	s.spaces[wire] = sp
	return sp, nil
}

// snapshotSpaces returns the live spaces ordered by wire form, so the
// default space (wire "") always leads and aggregate listings are stable.
func (s *System) snapshotSpaces() []*Space {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	wires := make([]string, 0, len(s.spaces))
	for w := range s.spaces {
		wires = append(wires, w)
	}
	sort.Strings(wires)
	out := make([]*Space, 0, len(wires))
	for _, w := range wires {
		out = append(out, s.spaces[w])
	}
	return out
}

// spaceService routes a GRH dispatch to the per-tenant service instance
// selected by the request's tenant stamp. The GRH keeps one registered
// service per component language; with per-tenant matchers and SNOOP
// detectors, that one service is this router.
type spaceService struct {
	s    *System
	pick func(*Space) grh.Service
}

func (r spaceService) Handle(req *protocol.Request) (*protocol.Answer, error) {
	sp, err := r.s.spaceFor(req.Tenant)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", req.Tenant, err)
	}
	return r.pick(sp).Handle(req)
}

// tenantName extracts the tenant a request addresses from the
// X-ECA-Tenant header or the ?tenant= query parameter. Absent both, the
// empty string selects the default tenant; naming different tenants in
// both places is an error.
func tenantName(r *http.Request) (string, error) {
	h := r.Header.Get(protocol.TenantHeader)
	q := r.URL.Query().Get("tenant")
	if h != "" && q != "" && h != q {
		return "", fmt.Errorf("%s header %q conflicts with ?tenant=%s", protocol.TenantHeader, h, q)
	}
	if h != "" {
		return h, nil
	}
	return q, nil
}

// spaceFromRequest resolves the request's tenant to its space, answering
// 400 with the documented JSON error body when the tenant id is invalid.
func (s *System) spaceFromRequest(w http.ResponseWriter, r *http.Request) (*Space, bool) {
	name, err := tenantName(r)
	if err == nil {
		var sp *Space
		if sp, err = s.spaceFor(name); err == nil {
			return sp, true
		}
	}
	writeError(w, http.StatusBadRequest, err.Error())
	return nil, false
}

// listTenant resolves the tenant filter of a listing endpoint (GET
// /engine/rules, /debug/traces). Absent means "all tenants". A named
// tenant must already exist — declared up front or created by use — so
// filtering on an unknown tenant is a 400, not a silently empty list.
// Returns the tenant's wire form and whether a filter applies.
func (s *System) listTenant(w http.ResponseWriter, r *http.Request) (wire string, filtered, ok bool) {
	q := r.URL.Query()
	hdr := r.Header.Get(protocol.TenantHeader)
	if !q.Has("tenant") && hdr == "" {
		return "", false, true
	}
	name := hdr
	if q.Has("tenant") {
		name = q.Get("tenant")
		if hdr != "" && name != hdr {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("%s header %q conflicts with ?tenant=%s", protocol.TenantHeader, hdr, name))
			return "", false, false
		}
	}
	full := s.Tenants.Canonical(name)
	if _, known := s.Tenants.Lookup(full); !known {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown tenant %q", name))
		return "", false, false
	}
	return s.wireFor(full), true, true
}

// tenantTraces validates the ?tenant= filter before delegating to the obs
// trace handler: an unknown tenant is a 400, and a known one is rewritten
// to its wire form (the default tenant's traces carry no tenant stamp).
func (s *System) tenantTraces(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if q.Has("tenant") {
			name := q.Get("tenant")
			full := s.Tenants.Canonical(name)
			if _, known := s.Tenants.Lookup(full); !known {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown tenant %q", name))
				return
			}
			q.Set("tenant", s.wireFor(full))
			r.URL.RawQuery = q.Encode()
		}
		next.ServeHTTP(w, r)
	})
}

// QuotaExceeded is the documented JSON body of a 429 caused by a tenant
// quota, as opposed to the node-wide Overload shape: the named tenant hit
// the stated limit, and — unlike overload shedding — retrying on another
// node will not help, which is why cluster forwarders meter these under
// reason "quota" instead of re-routing.
type QuotaExceeded struct {
	Error             string `json:"error"` // always "quota_exceeded"
	Tenant            string `json:"tenant"`
	Reason            string `json:"reason"` // "max-rules", "max-pending-events" or "rate"
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

func writeQuotaExceeded(w http.ResponseWriter, err error) {
	qe, ok := err.(*tenant.QuotaError)
	if !ok {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(QuotaExceeded{
		Error: "quota_exceeded", Tenant: qe.Tenant, Reason: qe.Reason, RetryAfterSeconds: 1,
	})
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

// localRules aggregates every space's registered rules — the cluster
// layer's vocabulary advertisement covers all tenants.
func (s *System) localRules() []*ruleml.Rule {
	var out []*ruleml.Rule
	for _, sp := range s.snapshotSpaces() {
		out = append(out, sp.Engine.RegisteredRules()...)
	}
	return out
}

// registerRecovered re-registers one journaled rule into its tenant's
// space through the regular validation path, restoring its id and
// registration time. It is the rule-phase callback of both crash recovery
// (Recover) and cluster partition takeover. Recovery bypasses the
// max-rules quota (ForceRule): rules journaled before a quota was
// tightened must survive a restart.
func (s *System) registerRecovered(tenantWire, id string, doc *xmltree.Node, registered time.Time) error {
	sp, err := s.spaceFor(tenantWire)
	if err != nil {
		return err
	}
	rule, err := ruleml.Parse(doc)
	if err != nil {
		return err
	}
	rule.ID = id
	if err := sp.Engine.Register(rule); err != nil {
		return err
	}
	sp.Tenant.ForceRule()
	sp.Engine.SetRegistered(id, registered)
	return nil
}

// publishRecovered re-publishes one orphaned event — accepted but never
// dispatched — on the stream, stamped with the tenant it was journaled
// under so only that tenant's detectors see it; the event phase of both
// crash recovery and cluster partition takeover.
func (s *System) publishRecovered(tenantWire string, doc *xmltree.Node) error {
	sp, err := s.spaceFor(tenantWire)
	if err != nil {
		return err
	}
	ev := events.New(doc)
	ev.Tenant = sp.wire
	s.Stream.Publish(ev)
	return nil
}

// TenantHealth is one tenant's entry in the /healthz tenants section,
// present only when more than one space is live.
type TenantHealth struct {
	ID            string `json:"id"`
	Rules         int    `json:"rules"`
	PendingEvents int    `json:"pending_events"`
}
