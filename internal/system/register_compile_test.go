package system

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
)

// badTestRuleXML is a rule whose test component is not valid XPath: before
// registration-time precompilation the register succeeded and every
// matching event produced a service error.
func badTestRuleXML(id string) string {
	return `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="` + tNS + `" id="` + id + `">
	  <eca:event><t:ping x="$X"/></eca:event>
	  <eca:test>$X !!= '7'</eca:test>
	  <eca:action><t:pong x="$X"/></eca:action>
	</eca:rule>`
}

// TestRegisterRejectsBadExpression pins the satellite contract: a rule
// whose component expression does not compile is rejected at POST
// /engine/rules with a 400 whose body names the offending component.
func TestRegisterRejectsBadExpression(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/engine/rules", "application/xml", strings.NewReader(badTestRuleXML("bad-test")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %q", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "test[1]") {
		t.Errorf("400 body does not name the bad component: %q", body)
	}
	if !strings.Contains(string(body), "bad-test") {
		t.Errorf("400 body does not name the rule: %q", body)
	}
	// The rejected rule must not be registered.
	for _, id := range sys.Engine.Rules() {
		if id == "bad-test" {
			t.Error("rejected rule is registered")
		}
	}

	// Bad XQuery-lite query components are caught the same way.
	badQuery := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="` + tNS + `"
	  xmlns:xq="` + services.XQueryNS + `" id="bad-query">
	  <eca:event><t:ping x="$X"/></eca:event>
	  <eca:query><xq:query>for $c in doc( return $c</xq:query></eca:query>
	  <eca:action><t:pong x="$X"/></eca:action>
	</eca:rule>`
	resp, err = http.Post(srv.URL+"/engine/rules", "application/xml", strings.NewReader(badQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "query[1]") {
		t.Fatalf("bad query: status %d body %q, want 400 naming query[1]", resp.StatusCode, body)
	}

	// A healthy rule still registers fine after the rejections.
	resp, err = http.Post(srv.URL+"/engine/rules", "application/xml", strings.NewReader(simpleRuleXML("ok-rule")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy rule: status %d", resp.StatusCode)
	}
}

// TestRegisterSkipsOpaquePinnedComponents: components addressed to a pinned
// service URI are opaque to the engine and must not be precompiled — their
// text may be in any language (Fig. 9/10).
func TestRegisterSkipsOpaquePinnedComponents(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rule, err := ruleml.ParseString(`<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="` + tNS + `" id="opaque-ok">
	  <eca:event><t:ping x="$X"/></eca:event>
	  <eca:query binds="Y">
	    <eca:opaque language="http://example.org/rawlang" uri="http://example.org/raw">this is ( not an expression</eca:opaque>
	  </eca:query>
	  <eca:action><t:pong x="$X"/></eca:action>
	</eca:rule>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Engine.Register(rule); err != nil {
		t.Fatalf("pinned-service opaque component rejected at registration: %v", err)
	}
}

// TestEngineErrBadExpression pins the sentinel so HTTP layers can map it.
func TestEngineErrBadExpression(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rule, err := ruleml.ParseString(badTestRuleXML("sentinel"))
	if err != nil {
		t.Fatal(err)
	}
	regErr := sys.Engine.Register(rule)
	if !errors.Is(regErr, engine.ErrBadExpression) {
		t.Fatalf("Register error %v does not match engine.ErrBadExpression", regErr)
	}
}
