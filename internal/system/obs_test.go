package system

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/xmltree"
)

// chainRuleXML is a five-component rule exercising every stage kind:
// event → query → query → test → action. The first query maps the event's
// key to a name, the second maps the name to a grade, the test keeps only
// passing grades.
const chainRuleXML = `<eca:rule xmlns:eca="` + protocol.ECANS + `"
    xmlns:t="` + tNS + `"
    xmlns:xq="` + services.XQueryNS + `" id="chain">
  <eca:event><t:ping k="$K"/></eca:event>
  <eca:variable name="Name">
    <eca:query>
      <xq:query>for $i in doc('people')//person[@k=$K] return $i/name/text()</xq:query>
    </eca:query>
  </eca:variable>
  <eca:variable name="Grade">
    <eca:query>
      <xq:query>for $g in doc('grades')//grade[@name=$Name] return $g/value/text()</xq:query>
    </eca:query>
  </eca:variable>
  <eca:test>$Grade &gt; 3</eca:test>
  <eca:action><t:pong name="$Name" grade="$Grade"/></eca:action>
</eca:rule>`

func newChainSystem(t *testing.T, hub *obs.Hub) *System {
	t.Helper()
	sys, err := NewLocal(Config{Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	sys.Store.Put("people", xmltree.MustParse(`<people>
	  <person k="7"><name>Ada</name></person>
	  <person k="7"><name>Bob</name></person>
	</people>`))
	sys.Store.Put("grades", xmltree.MustParse(`<grades>
	  <grade name="Ada"><value>5</value></grade>
	  <grade name="Bob"><value>2</value></grade>
	</grades>`))
	rule, err := ruleml.ParseString(chainRuleXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Engine.Register(rule); err != nil {
		t.Fatal(err)
	}
	return sys
}

func ping(sys *System, k string) {
	payload := xmltree.NewElement(tNS, "ping")
	payload.SetAttr("", "k", k)
	sys.Stream.Publish(events.New(payload))
}

// TestChainRuleSpanSequence asserts the canonical span sequence of an
// instrumented firing: Event → Query → Query → Test → Action.
func TestChainRuleSpanSequence(t *testing.T) {
	hub := obs.NewHub()
	sys := newChainSystem(t, hub)

	ping(sys, "7")
	if got := len(sys.Notifier.Sent()); got != 1 {
		t.Fatalf("notifications = %d, want 1 (only Ada passes the test)", got)
	}

	traces := hub.Traces().Snapshot()
	if len(traces) != 1 {
		t.Fatalf("instance traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	var stages []string
	for _, s := range tr.Spans {
		stages = append(stages, s.Stage)
	}
	if got := strings.Join(stages, "→"); got != "event→query→query→test→action" {
		t.Fatalf("span sequence = %s", got)
	}
	// The test component runs in the engine, not through a service.
	if tr.Spans[3].Mode != "local" {
		t.Errorf("test span mode = %q, want local", tr.Spans[3].Mode)
	}
	// Two names join two grades; the test drops Bob's grade 2.
	if in, out := tr.Spans[3].TuplesIn, tr.Spans[3].TuplesOut; in != 2 || out != 1 {
		t.Errorf("test span tuples = %d→%d, want 2→1", in, out)
	}
	if tr.State != "completed" {
		t.Errorf("trace state = %q", tr.State)
	}
}

// TestObservabilityEndpoints drives the mux's /metrics, /debug/traces and
// /healthz after a firing.
func TestObservabilityEndpoints(t *testing.T) {
	hub := obs.NewHub()
	sys := newChainSystem(t, hub)
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	ping(sys, "7")

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("/metrics = %d %q", code, hdr.Get("Content-Type"))
	}
	for _, want := range []string{
		`engine_instances{state="created"} 1`,
		`engine_instances{state="completed"} 1`,
		"# TYPE grh_dispatch_seconds histogram",
		`grh_dispatch_seconds_bucket{language="` + services.XQueryNS + `",mode="local",le="+Inf"} 2`,
		`service_requests_total{kind="query"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, _ = get("/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces = %d", code)
	}
	var tracesResp struct {
		Recorded  uint64              `json:"recorded"`
		Instances []obs.InstanceTrace `json:"instances"`
	}
	if err := json.Unmarshal([]byte(body), &tracesResp); err != nil {
		t.Fatalf("/debug/traces JSON: %v\n%s", err, body)
	}
	if tracesResp.Recorded != 1 || len(tracesResp.Instances) != 1 || len(tracesResp.Instances[0].Spans) != 5 {
		t.Errorf("/debug/traces = %+v", tracesResp)
	}
	// Filtering by another rule yields an empty set.
	code, body, _ = get("/debug/traces?rule=no-such-rule")
	if code != 200 || strings.Contains(body, `"rule": "chain"`) {
		t.Errorf("filtered traces = %d %s", code, body)
	}

	code, body, hdr = get("/healthz")
	if code != 200 || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("/healthz = %d %q", code, hdr.Get("Content-Type"))
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Rules != 1 || h.Languages == 0 || h.InstancesCompleted != 1 || h.Notifications != 1 {
		t.Errorf("/healthz = %+v", h)
	}
}

// TestMuxWithoutObsOmitsMetrics checks that an uninstrumented system keeps
// working and simply does not mount the observability endpoints, while
// /healthz stays available.
func TestMuxWithoutObsOmitsMetrics(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without hub = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz without hub = %d, want 200", resp.StatusCode)
	}
}
