package system

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestReadyThreshold(t *testing.T) {
	for _, tc := range []struct{ max, want int }{
		{1, 1}, {2, 1}, {3, 2}, {10, 9}, {20, 18}, {100, 90},
	} {
		if got := readyThreshold(tc.max); got != tc.want {
			t.Errorf("readyThreshold(%d) = %d, want %d", tc.max, got, tc.want)
		}
	}
}

// TestHealthzReadinessDegrades fills the admission semaphore directly
// and watches /healthz flip: ready while pending is below 90% of
// -max-pending-events, degraded at or above it, ready again once slots
// drain — the load-balancer signal documented on Health.
func TestHealthzReadinessDegrades(t *testing.T) {
	sys, err := NewLocal(Config{MaxPendingEvents: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	check := func(wantReady bool, wantStatus string, wantPending int) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz status = %d", resp.StatusCode)
		}
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if h.Ready != wantReady || h.Status != wantStatus {
			t.Fatalf("ready=%v status=%q, want ready=%v status=%q", h.Ready, h.Status, wantReady, wantStatus)
		}
		if h.Admission == nil {
			t.Fatal("admission section absent with -max-pending-events set")
		}
		if h.Admission.Pending != wantPending || h.Admission.MaxPendingEvents != 10 || h.Admission.ReadyThreshold != 9 {
			t.Fatalf("admission = %+v, want pending %d of 10, threshold 9", h.Admission, wantPending)
		}
	}

	check(true, "ok", 0)
	// Occupy slots up to just below the threshold: still ready.
	for i := 0; i < 8; i++ {
		sys.eventSlots <- struct{}{}
	}
	check(true, "ok", 8)
	// The 9th slot crosses 90% of the cap: degraded before any 429s
	// (the 10th slot would be the last one admitted).
	sys.eventSlots <- struct{}{}
	check(false, "degraded", 9)
	// Draining recovers readiness without a restart.
	<-sys.eventSlots
	check(true, "ok", 8)
}

// TestHealthzWithoutLimitAlwaysReady: no -max-pending-events means no
// admission section and a node that never degrades on pressure.
func TestHealthzWithoutLimitAlwaysReady(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Ready || h.Status != "ok" || h.Admission != nil {
		t.Errorf("unlimited node healthz = ready=%v status=%q admission=%+v", h.Ready, h.Status, h.Admission)
	}
}
