package system

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/protocol"
)

// TestConcurrentRulesThroughCachedForms drives two rules that share one
// cached compiled test expression from many goroutines at once (run under
// -race): cached compiled forms must be safe for concurrent evaluation and
// must not leak bindings between in-flight events.
func TestConcurrentRulesThroughCachedForms(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	// Both rules carry the same test expression, so after registration
	// pre-warming they evaluate through the same cached *xpath.Expr.
	rule := func(id, action string) string {
		return `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="` + tNS + `" id="` + id + `">
		  <eca:event><t:ping x="$X"/></eca:event>
		  <eca:test>$X != 'skip'</eca:test>
		  <eca:action><t:` + action + ` x="$X"/></eca:action>
		</eca:rule>`
	}
	for _, r := range []string{rule("cached-a", "pong"), rule("cached-b", "echo")} {
		resp, err := http.Post(srv.URL+"/engine/rules", "application/xml", strings.NewReader(r))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register: %d %q", resp.StatusCode, body)
		}
	}

	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				x := fmt.Sprintf("g%dv%d", g, i)
				if i%5 == 0 {
					x = "skip" // filtered by the shared test expression
				}
				ev := `<t:ping xmlns:t="` + tNS + `" x="` + x + `"/>`
				resp, err := http.Post(srv.URL+"/events", "application/xml", strings.NewReader(ev))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("event %q: status %d", x, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Each non-skip event fires both rules; skip events fire neither.
	passing := goroutines * perG * 4 / 5
	sent := sys.Notifier.Sent()
	if got, want := len(sent), passing*2; got != want {
		t.Fatalf("notifications = %d, want %d", got, want)
	}
	// No filtered binding leaked through a shared compiled form, and every
	// notification carries the binding of its own event.
	seen := map[string]int{}
	for _, n := range sent {
		x := n.Message.AttrValue("", "x")
		if x == "skip" {
			t.Fatalf("filtered event fired: %s", n.Message)
		}
		seen[n.Message.Name.Local+"/"+x]++
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if i%5 == 0 {
				continue
			}
			x := fmt.Sprintf("g%dv%d", g, i)
			for _, action := range []string{"pong", "echo"} {
				if seen[action+"/"+x] != 1 {
					t.Fatalf("event %s fired %s %d times, want 1", x, action, seen[action+"/"+x])
				}
			}
		}
	}
}
