package system

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
)

// TestEventsOverloadContract pins the documented 429 shape of POST /events:
// Retry-After header plus the Overload JSON body — the contract cluster
// forwarding relies on to tell shed load from hard failure.
func TestEventsOverloadContract(t *testing.T) {
	sys, err := NewLocal(Config{MaxPendingEvents: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	// Occupy the single admission slot, as an in-flight request would.
	sys.eventSlots <- struct{}{}
	resp, err := http.Post(srv.URL+"/events", "application/xml",
		strings.NewReader(`<t:ping xmlns:t="`+tNS+`"/>`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded POST /events: HTTP %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want 1", got)
	}
	var ov Overload
	if err := json.Unmarshal(body, &ov); err != nil {
		t.Fatalf("overload body %q: %v", body, err)
	}
	if ov.Error != "overloaded" || ov.RetryAfterSeconds != 1 {
		t.Errorf("overload body = %+v", ov)
	}

	// Releasing the slot restores service.
	<-sys.eventSlots
	resp, err = http.Post(srv.URL+"/events", "application/xml",
		strings.NewReader(`<t:ping xmlns:t="`+tNS+`"/>`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST /events after release: HTTP %d", resp.StatusCode)
	}
}

// TestSingleNodeRuleListingUnchanged is the regression guard for the owner
// field: on a single-node deployment GET /engine/rules must be
// byte-identical to the engine's own snapshot serialization — in
// particular, no "owner" key may appear.
func TestSingleNodeRuleListingUnchanged(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/engine/rules", "application/xml",
		strings.NewReader(simpleRuleXML("solo")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/engine/rules")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "owner") {
		t.Errorf("single-node rule listing leaks the owner field:\n%s", body)
	}
	// Byte-for-byte: the handler output is exactly the indented marshal of
	// the engine snapshot, as it was before clustering existed.
	var want strings.Builder
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Rules []engine.RuleInfo `json:"rules"`
	}{sys.Engine.RuleInfos()})
	if string(body) != want.String() {
		t.Errorf("listing diverged from engine snapshot:\n got %s\nwant %s", body, want.String())
	}
}

// clusterNode is one in-process member of a test cluster: a full System
// served on a real listener.
type clusterNode struct {
	sys *System
	srv *http.Server
	url string
}

// startCluster boots n Systems as cluster peers node-0..node-n-1 on real
// loopback listeners and starts their probers.
func startCluster(t *testing.T, n int, probe time.Duration) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = cluster.Peer{ID: fmt.Sprintf("node-%d", i), URL: "http://" + ln.Addr().String()}
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		sys, err := NewLocal(Config{Cluster: &cluster.Options{
			NodeID:        peers[i].ID,
			Peers:         peers,
			ReplicateTo:   "none", // no stores in this in-process test
			ProbeInterval: probe,
		}})
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: sys.Mux(nil, nil)}
		go srv.Serve(lns[i])
		sys.StartCluster()
		nodes[i] = &clusterNode{sys: sys, srv: srv, url: peers[i].URL}
		t.Cleanup(func() { srv.Close(); sys.Close() })
	}
	return nodes
}

// ruleOwnedBy finds a rule id the cluster ring assigns to the wanted node.
func ruleOwnedBy(t *testing.T, node *System, want string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("pick-%d", i)
		if node.Cluster.Owner(id) == want {
			return id
		}
	}
	t.Fatalf("no rule id hashes to %s", want)
	return ""
}

func TestClusterShardsRulesAndRoutesEvents(t *testing.T) {
	nodes := startCluster(t, 2, 50*time.Millisecond)
	a, b := nodes[0], nodes[1]

	// A rule whose id hashes to node-1, registered via node-0, must land on
	// node-1 and carry its owner in the listing.
	remoteID := ruleOwnedBy(t, a.sys, "node-1")
	resp, err := http.Post(a.url+"/engine/rules", "application/xml",
		strings.NewReader(simpleRuleXML(remoteID)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != remoteID {
		t.Fatalf("forwarded registration: HTTP %d %q", resp.StatusCode, body)
	}
	if got := len(a.sys.Engine.Rules()); got != 0 {
		t.Errorf("rule registered on the wrong node: node-0 has %d rules", got)
	}
	if got := b.sys.Engine.Rules(); len(got) != 1 || got[0] != remoteID {
		t.Fatalf("node-1 rules = %v, want [%s]", got, remoteID)
	}

	resp, err = http.Get(b.url + "/engine/rules")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"owner": "node-1"`) {
		t.Errorf("clustered listing lacks the owner field:\n%s", body)
	}

	// An event matching the rule, posted to the non-owning node, is
	// forwarded (202) and fires on the owner.
	resp, err = http.Post(a.url+"/events", "application/xml",
		strings.NewReader(`<t:ping xmlns:t="`+tNS+`" x="9"/>`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded event: HTTP %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "node-1") {
		t.Errorf("forward response = %q", body)
	}
	if fired := len(b.sys.Notifier.Sent()); fired != 1 {
		t.Errorf("rule fired %d times on its owner, want 1", fired)
	}
	if stray := len(a.sys.Notifier.Sent()); stray != 0 {
		t.Errorf("non-owning node fired %d times", stray)
	}

	// A rule owned by the receiving node registers locally.
	localID := ruleOwnedBy(t, a.sys, "node-0")
	resp, err = http.Post(a.url+"/engine/rules", "application/xml",
		strings.NewReader(strings.ReplaceAll(simpleRuleXML(localID), "t:ping", "t:local")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := a.sys.Engine.Rules(); len(got) != 1 || got[0] != localID {
		t.Fatalf("node-0 rules = %v, want [%s]", got, localID)
	}

	// The health document carries the cluster section.
	resp, err = http.Get(a.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil || h.Cluster.Node != "node-0" {
		t.Errorf("healthz cluster section = %+v", h.Cluster)
	}
}
