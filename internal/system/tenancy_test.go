package system

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/services"
	"repro/internal/tenant"
	"repro/internal/xmltree"
)

// tenantRuleXML is simpleRuleXML with a marker attribute on the action,
// so notifications reveal which tenant's rule fired.
func tenantRuleXML(id, marker string) string {
	return `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="` + tNS + `" id="` + id + `">
	  <eca:event><t:ping x="$X"/></eca:event>
	  <eca:action><t:pong fired-by="` + marker + `" x="$X"/></eca:action>
	</eca:rule>`
}

// tenantDo performs one request with an optional X-ECA-Tenant header and
// returns the status code and body.
func tenantDo(t *testing.T, method, url, tenantID, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/xml")
	}
	if tenantID != "" {
		req.Header.Set(protocol.TenantHeader, tenantID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(out)
}

// firedBy collects the fired-by markers of every notification sent so
// far.
func firedBy(sys *System) []string {
	var out []string
	for _, nt := range sys.Notifier.Sent() {
		out = append(out, nt.Message.AttrValue("", "fired-by"))
	}
	return out
}

// Two tenants and the default space: rules land in the space the request
// names, events only reach their own tenant's rules, and listings filter
// by tenant (rejecting unknown ones with the JSON error contract).
func TestTenantIsolation(t *testing.T) {
	hub := obs.NewHub()
	sys, err := NewLocal(Config{Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	for _, reg := range []struct{ tenant, id string }{
		{"acme", "r-acme"}, {"beta", "r-beta"}, {"", "r-default"},
	} {
		marker := reg.tenant
		if marker == "" {
			marker = "default"
		}
		if code, body := tenantDo(t, http.MethodPost, srv.URL+"/engine/rules", reg.tenant, tenantRuleXML(reg.id, marker)); code != 200 {
			t.Fatalf("register %s for %q = %d %q", reg.id, reg.tenant, code, body)
		}
	}

	// One event per tenant; each must fire exactly its own tenant's rule.
	event := `<t:ping xmlns:t="` + tNS + `" x="7"/>`
	for _, tn := range []string{"acme", "beta", ""} {
		if code, body := tenantDo(t, http.MethodPost, srv.URL+"/events", tn, event); code != 200 {
			t.Fatalf("event for %q = %d %q", tn, code, body)
		}
	}
	if got := strings.Join(firedBy(sys), ","); got != "acme,beta,default" {
		t.Fatalf("firings = %q, want acme,beta,default", got)
	}

	// Unfiltered listing aggregates all spaces, default space first.
	code, body := tenantDo(t, http.MethodGet, srv.URL+"/engine/rules?format=ids", "", "")
	if code != 200 || strings.Join(strings.Fields(body), ",") != "r-default,r-acme,r-beta" {
		t.Fatalf("unfiltered ids = %d %q", code, body)
	}
	// ?tenant= filters to one space; the default tenant's external name
	// works too.
	code, body = tenantDo(t, http.MethodGet, srv.URL+"/engine/rules?format=ids&tenant=acme", "", "")
	if code != 200 || strings.TrimSpace(body) != "r-acme" {
		t.Fatalf("acme ids = %d %q", code, body)
	}
	code, body = tenantDo(t, http.MethodGet, srv.URL+"/engine/rules?format=ids&tenant="+tenant.Default, "", "")
	if code != 200 || strings.TrimSpace(body) != "r-default" {
		t.Fatalf("default-tenant ids = %d %q", code, body)
	}
	// The JSON listing stamps each rule's tenant (omitted for default).
	code, body = tenantDo(t, http.MethodGet, srv.URL+"/engine/rules?tenant=acme", "", "")
	if code != 200 || !strings.Contains(body, `"tenant": "acme"`) {
		t.Fatalf("acme rules JSON = %d %q", code, body)
	}
	// Filtering on a tenant that never existed is a 400 with the JSON
	// error contract, not a silently empty list.
	code, body = tenantDo(t, http.MethodGet, srv.URL+"/engine/rules?tenant=ghost", "", "")
	var errBody struct {
		Error string `json:"error"`
	}
	if code != 400 || json.Unmarshal([]byte(body), &errBody) != nil || !strings.Contains(errBody.Error, "ghost") {
		t.Fatalf("unknown tenant listing = %d %q", code, body)
	}
	// Same contract on the trace listing.
	code, body = tenantDo(t, http.MethodGet, srv.URL+"/debug/traces?tenant=ghost", "", "")
	if code != 400 || json.Unmarshal([]byte(body), &errBody) != nil || !strings.Contains(errBody.Error, "ghost") {
		t.Fatalf("unknown tenant traces = %d %q", code, body)
	}
	// Trace filtering: each tenant sees only its own instances.
	code, body = tenantDo(t, http.MethodGet, srv.URL+"/debug/traces?tenant=acme", "", "")
	if code != 200 || !strings.Contains(body, "r-acme#") || strings.Contains(body, "r-beta#") || strings.Contains(body, "r-default#") {
		t.Fatalf("acme traces = %d %q", code, body)
	}

	// DELETE scoped to a tenant removes only that tenant's rule.
	if code, body := tenantDo(t, http.MethodDelete, srv.URL+"/engine/rules/r-acme", "acme", ""); code != 200 {
		t.Fatalf("delete r-acme = %d %q", code, body)
	}
	code, body = tenantDo(t, http.MethodGet, srv.URL+"/engine/rules?format=ids", "", "")
	if code != 200 || strings.Join(strings.Fields(body), ",") != "r-default,r-beta" {
		t.Fatalf("ids after delete = %d %q", code, body)
	}

	// Per-tenant admission counters reconcile with the three admits.
	reg := hub.Metrics()
	for _, c := range []struct {
		tenant string
		want   int64
	}{{"acme", 1}, {"beta", 1}, {"", 1}} {
		if got := reg.CounterVec("events_admitted_total", "", "tenant").With(c.tenant).Value(); got != c.want {
			t.Errorf("events_admitted_total{tenant=%q} = %d, want %d", c.tenant, got, c.want)
		}
	}
}

// Quota rejections: a tenant at its max-rules or rate quota gets the
// quota_exceeded 429 body — distinct from the node-wide overloaded body —
// while other tenants keep admitting, and the shed counter splits by
// reason. The exposition must stay lint-clean with the new labels.
func TestTenantQuotaRejections(t *testing.T) {
	hub := obs.NewHub()
	sys, err := NewLocal(Config{
		Obs:              hub,
		MaxPendingEvents: 1,
		TenantQuotas: map[string]tenant.Quotas{
			"acme": {MaxRules: 1, EventRate: 0.000001, EventBurst: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	// Rule quota: the first registration fits, the second is rejected
	// with the documented body and consumes nothing.
	if code, body := tenantDo(t, http.MethodPost, srv.URL+"/engine/rules", "acme", tenantRuleXML("q-1", "acme")); code != 200 {
		t.Fatalf("first acme rule = %d %q", code, body)
	}
	code, body := tenantDo(t, http.MethodPost, srv.URL+"/engine/rules", "acme", tenantRuleXML("q-2", "acme"))
	var quota QuotaExceeded
	if code != 429 || json.Unmarshal([]byte(body), &quota) != nil {
		t.Fatalf("second acme rule = %d %q", code, body)
	}
	if quota.Error != "quota_exceeded" || quota.Tenant != "acme" || quota.Reason != "max-rules" {
		t.Fatalf("quota body = %+v", quota)
	}
	// An unthrottled tenant is unaffected.
	if code, body := tenantDo(t, http.MethodPost, srv.URL+"/engine/rules", "beta", tenantRuleXML("q-3", "beta")); code != 200 {
		t.Fatalf("beta rule = %d %q", code, body)
	}

	// Event-rate quota: burst 1 admits one event, the second is shed with
	// reason "rate" while beta still admits.
	event := `<t:ping xmlns:t="` + tNS + `" x="1"/>`
	if code, body := tenantDo(t, http.MethodPost, srv.URL+"/events", "acme", event); code != 200 {
		t.Fatalf("first acme event = %d %q", code, body)
	}
	code, body = tenantDo(t, http.MethodPost, srv.URL+"/events", "acme", event)
	if code != 429 || json.Unmarshal([]byte(body), &quota) != nil || quota.Error != "quota_exceeded" || quota.Reason != "rate" {
		t.Fatalf("rate-limited event = %d %q", code, body)
	}
	if code, body := tenantDo(t, http.MethodPost, srv.URL+"/events", "beta", event); code != 200 {
		t.Fatalf("beta event = %d %q", code, body)
	}

	// Node overload is a different 429: fill the admission semaphore and
	// the body says "overloaded", not "quota_exceeded".
	sys.eventSlots <- struct{}{}
	code, body = tenantDo(t, http.MethodPost, srv.URL+"/events", "beta", event)
	<-sys.eventSlots
	var over Overload
	if code != 429 || json.Unmarshal([]byte(body), &over) != nil || over.Error != "overloaded" {
		t.Fatalf("overloaded = %d %q", code, body)
	}

	reg := hub.Metrics()
	shed := reg.CounterVec("events_shed_total", "", "tenant", "reason")
	if got := shed.With("acme", "quota").Value(); got != 1 {
		t.Errorf("events_shed_total{acme,quota} = %d, want 1", got)
	}
	if got := shed.With("beta", "overload").Value(); got != 1 {
		t.Errorf("events_shed_total{beta,overload} = %d, want 1", got)
	}
	// The per-tenant admitted counters reconcile: acme 1, beta 1.
	adm := reg.CounterVec("events_admitted_total", "", "tenant")
	if a, b := adm.With("acme").Value(), adm.With("beta").Value(); a != 1 || b != 1 {
		t.Errorf("admitted acme=%d beta=%d, want 1 and 1", a, b)
	}

	// Lint regression: the tenant/reason labels must not break the
	// Prometheus exposition contract.
	var exp strings.Builder
	reg.WritePrometheus(&exp)
	if err := obs.LintExposition(strings.NewReader(exp.String())); err != nil {
		t.Errorf("exposition lint: %v\n%s", err, exp.String())
	}
	for _, want := range []string{`reason="quota"`, `reason="overload"`, `tenant="acme"`} {
		if !strings.Contains(exp.String(), want) {
			t.Errorf("exposition missing %s:\n%s", want, exp.String())
		}
	}
}

// A durable deployment recovers each tenant's rules and orphaned events
// into that tenant's space: after a crash and restart, replayed events
// fire only their own tenant's rules and listings keep the tenant stamps.
func TestTenantDurableRecovery(t *testing.T) {
	dir := t.TempDir()

	sys1 := durableSystem(t, dir, nil)
	srv1 := httptest.NewServer(sys1.Mux(nil, nil))
	if code, body := tenantDo(t, http.MethodPost, srv1.URL+"/engine/rules", "acme", tenantRuleXML("d-acme", "acme")); code != 200 {
		t.Fatalf("register acme = %d %q", code, body)
	}
	if code, body := tenantDo(t, http.MethodPost, srv1.URL+"/engine/rules", "", tenantRuleXML("d-default", "default")); code != 200 {
		t.Fatalf("register default = %d %q", code, body)
	}
	// Orphan one event per tenant: journaled (as a crash between accept
	// and dispatch would leave them) but never published.
	for _, orphan := range []struct{ tenant, x string }{{"acme", "41"}, {"", "42"}} {
		doc, err := xmltree.ParseString(`<t:ping xmlns:t="` + tNS + `" x="` + orphan.x + `"/>`)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys1.Durable.AppendEventBatchTenant(orphan.tenant, []*xmltree.Node{doc}); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Close()
	// Crash: no Close, the journal holds two rules and two orphans.

	sys2 := durableSystem(t, dir, nil)
	defer sys2.Close()
	for _, sp := range sys2.snapshotSpaces() {
		sp.Engine.Wait()
	}
	fired := firedBy(sys2)
	if len(fired) != 2 {
		t.Fatalf("recovery fired %d instances, want 2 (%v)", len(fired), fired)
	}
	sent := sys2.Notifier.Sent()
	for _, nt := range sent {
		marker := nt.Message.AttrValue("", "fired-by")
		x := nt.Message.AttrValue("", "x")
		if (marker == "acme") != (x == "41") {
			t.Errorf("cross-tenant replay: fired-by=%q x=%q", marker, x)
		}
	}

	srv2 := httptest.NewServer(sys2.Mux(nil, nil))
	defer srv2.Close()
	code, body := tenantDo(t, http.MethodGet, srv2.URL+"/engine/rules?format=ids&tenant=acme", "", "")
	if code != 200 || strings.TrimSpace(body) != "d-acme" {
		t.Fatalf("recovered acme ids = %d %q", code, body)
	}
	// Recovery restored the quota accounting: the acme space counts its
	// one rule.
	sp, err := sys2.spaceFor("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Tenant.Rules(); got != 1 {
		t.Errorf("recovered acme rule count = %d, want 1", got)
	}

	// Fresh traffic lands in the recovered spaces.
	if code, body := tenantDo(t, http.MethodPost, srv2.URL+"/events", "acme", `<t:ping xmlns:t="`+tNS+`" x="9"/>`); code != 200 {
		t.Fatalf("post-recovery event = %d %q", code, body)
	}
	if got := firedBy(sys2); got[len(got)-1] != "acme" {
		t.Fatalf("post-recovery firing = %v", got)
	}
}

// The default tenant can be renamed: -default-tenant maps the new name to
// the same wire form, so journals and metrics stay tenant-less.
func TestRenamedDefaultTenant(t *testing.T) {
	sys, err := NewLocal(Config{DefaultTenant: "main"})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	// Naming the default tenant explicitly and naming no tenant address
	// the same space.
	if code, body := tenantDo(t, http.MethodPost, srv.URL+"/engine/rules", "main", tenantRuleXML("rn-1", "default")); code != 200 {
		t.Fatalf("register via name = %d %q", code, body)
	}
	code, body := tenantDo(t, http.MethodGet, srv.URL+"/engine/rules?format=ids", "", "")
	if code != 200 || strings.TrimSpace(body) != "rn-1" {
		t.Fatalf("ids = %d %q", code, body)
	}
	// The old default name is now just an ordinary (unknown) tenant.
	code, body = tenantDo(t, http.MethodGet, srv.URL+"/engine/rules?format=ids&tenant="+tenant.Default, "", "")
	if code != 400 {
		t.Fatalf("old default name = %d %q", code, body)
	}
	info := sys.ruleInfos()
	if len(info) != 1 || info[0].Tenant != "" {
		t.Fatalf("renamed default must keep the empty wire form: %+v", info)
	}
}

// An invalid tenant id is rejected up front on both surfaces.
func TestInvalidTenantRejected(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	for _, path := range []string{"/engine/rules", "/events"} {
		code, body := tenantDo(t, http.MethodPost, srv.URL+path, "Not A Slug", `<x/>`)
		var errBody struct {
			Error string `json:"error"`
		}
		if code != 400 || json.Unmarshal([]byte(body), &errBody) != nil || errBody.Error == "" {
			t.Errorf("POST %s with bad tenant = %d %q", path, code, body)
		}
	}
}

// Events raised by act:raise stay inside the raising rule's tenant: a
// chain rule in another tenant must not fire.
func TestRaisedEventsStayInTenant(t *testing.T) {
	sys, err := NewLocal(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := httptest.NewServer(sys.Mux(nil, nil))
	defer srv.Close()

	raise := `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="` + tNS + `" xmlns:act="` + services.ActionNS + `" id="raiser">
	  <eca:event><t:ping x="$X"/></eca:event>
	  <eca:action><act:raise><t:chained x="$X"/></act:raise></eca:action>
	</eca:rule>`
	chainRule := func(id, marker string) string {
		return `<eca:rule xmlns:eca="` + protocol.ECANS + `" xmlns:t="` + tNS + `" id="` + id + `">
	  <eca:event><t:chained x="$X"/></eca:event>
	  <eca:action><t:pong fired-by="` + marker + `" x="$X"/></eca:action>
	</eca:rule>`
	}
	for _, reg := range []struct{ tenant, xml string }{
		{"acme", raise},
		{"acme", chainRule("chain-acme", "acme")},
		{"beta", chainRule("chain-beta", "beta")},
	} {
		if code, body := tenantDo(t, http.MethodPost, srv.URL+"/engine/rules", reg.tenant, reg.xml); code != 200 {
			t.Fatalf("register in %q = %d %q", reg.tenant, code, body)
		}
	}
	if code, body := tenantDo(t, http.MethodPost, srv.URL+"/events", "acme", `<t:ping xmlns:t="`+tNS+`" x="5"/>`); code != 200 {
		t.Fatalf("event = %d %q", code, body)
	}
	for _, sp := range sys.snapshotSpaces() {
		sp.Engine.Wait()
	}
	if got := strings.Join(firedBy(sys), ","); got != "acme" {
		t.Fatalf("chained firings = %q, want acme only", got)
	}
}
