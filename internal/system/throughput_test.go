package system_test

// End-to-end equivalence for the GRH throughput layer: the car-rental
// scenario must produce exactly the same notifications whether the
// answer cache, partitioned dispatch (across shard sizes), or neither
// is enabled. The throughput layer is an optimization — it must never
// change what rules fire.

import (
	"fmt"
	"testing"

	"repro/internal/domain/travel"
	"repro/internal/grh"
	"repro/internal/system"
)

func notifications(t *testing.T, cfg system.Config) []string {
	t.Helper()
	sc, cleanup, err := travel.NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	defer sc.Close()

	// A mix of offers and non-offers, with repeats so the cache can hit.
	sc.Book("John Doe", "Munich", "Paris")
	sc.Book("Jane Roe", "Berlin", "Paris") // class A, Paris has B and D → no offer
	sc.Book("John Doe", "Munich", "Paris")
	sc.Book("John Doe", "Munich", "Paris")

	var out []string
	for _, n := range sc.Notifier.Sent() {
		out = append(out, n.Message.String())
	}
	return out
}

func TestThroughputLayerEquivalence(t *testing.T) {
	baseline := notifications(t, system.Config{})
	if len(baseline) != 3 {
		t.Fatalf("baseline produced %d notifications, want 3", len(baseline))
	}

	configs := map[string]system.Config{
		"cache":           {Cache: grh.DefaultCachePolicy},
		"cache+partition": {Cache: grh.DefaultCachePolicy, Partition: grh.DefaultPartitionPolicy},
	}
	for _, maxTuples := range []int{1, 2, 7, 64} {
		configs[fmt.Sprintf("partition/maxTuples=%d", maxTuples)] = system.Config{
			Partition: grh.PartitionPolicy{MaxTuples: maxTuples, MaxShards: 8},
		}
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			got := notifications(t, cfg)
			if len(got) != len(baseline) {
				t.Fatalf("%d notifications, baseline %d:\n%v", len(got), len(baseline), got)
			}
			for i := range baseline {
				if got[i] != baseline[i] {
					t.Errorf("notification %d differs:\ngot:      %s\nbaseline: %s", i, got[i], baseline[i])
				}
			}
		})
	}
}
