// Command ecad runs the ECA engine daemon: the engine, the Generic Request
// Handler and every bundled component language service, exposed over HTTP
// (see system.Mux for the endpoint map). Rules and documents can be loaded
// at startup or pushed at runtime with ecactl.
//
// Usage:
//
//	ecad -addr :8080 [-rule file.xml]... [-doc uri=file.xml]... \
//	     [-datalog rules.dl] [-travel] [-distribute] [-metrics] [-v]
//
// With -travel the daemon preloads the paper's car-rental scenario
// (documents, opaque service endpoints and the Fig. 4 rule). With
// -distribute the GRH re-registers every service as a remote endpoint of
// this daemon, so all component traffic flows through the HTTP wire
// protocol (the distributed deployment of Fig. 3).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/datalog"
	"repro/internal/domain/travel"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/ruleml"
	"repro/internal/system"
	"repro/internal/xmltree"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		datalogSrc = flag.String("datalog", "", "Datalog rulebase file for the LP query service")
		registry   = flag.String("registry", "", "Turtle file with language-service descriptions to register (ontology-driven dispatch)")
		loadTravel = flag.Bool("travel", false, "preload the car-rental running example")
		distribute = flag.Bool("distribute", false, "route all component traffic over this daemon's HTTP endpoints")
		metrics    = flag.Bool("metrics", true, "expose /metrics and /debug/traces (observability hub)")
		verbose    = flag.Bool("v", false, "log engine evaluation traces")
		rules      repeated
		docs       repeated
	)
	flag.Var(&rules, "rule", "rule file to register at startup (repeatable)")
	flag.Var(&docs, "doc", "uri=file pair to load into the document store (repeatable)")
	flag.Parse()

	if err := run(*addr, *datalogSrc, *registry, *loadTravel, *distribute, *metrics, *verbose, rules, docs); err != nil {
		log.Fatal(err)
	}
}

func run(addr, datalogSrc, registry string, loadTravel, distribute, metrics, verbose bool, rules, docs []string) error {
	cfg := system.Config{Namespaces: travel.Namespaces()}
	if metrics {
		cfg.Obs = obs.NewHub()
	}
	if verbose {
		cfg.Logger = engine.LoggerFunc(log.Printf)
	}
	if datalogSrc != "" {
		src, err := os.ReadFile(datalogSrc)
		if err != nil {
			return err
		}
		prog, err := datalog.Parse(string(src))
		if err != nil {
			return err
		}
		cfg.Datalog = prog
	}
	sys, err := system.NewLocal(cfg)
	if err != nil {
		return err
	}
	for _, pair := range docs {
		uri, file, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-doc wants uri=file, got %q", pair)
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		doc, err := xmltree.ParseString(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		sys.Store.Put(uri, doc)
	}

	if registry != "" {
		f, err := os.Open(registry)
		if err != nil {
			return err
		}
		n, err := ontology.RegisterFromTurtle(sys.GRH, f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("registered %d language service(s) from %s", n, registry)
	}

	var opaqueDoc *xmltree.Node
	if loadTravel {
		travel.LoadStore(sys.Store)
		opaqueDoc = xmltree.MustParse(travel.ClassesXML)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	mux := sys.Mux(opaqueDoc, travel.Namespaces())
	srv := &http.Server{Handler: mux}

	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("ecad listening on %s", base)
	if metrics {
		log.Printf("observability on: %s/metrics %s/debug/traces %s/healthz", base, base, base)
	}

	if distribute {
		if err := sys.Distribute(base); err != nil {
			return err
		}
		log.Printf("component traffic routed through %s (distributed mode)", base)
	}
	if loadTravel {
		rule, err := ruleml.ParseString(travel.RuleXML(base+"/opaque/store", base+"/opaque/xquery"))
		if err != nil {
			return err
		}
		if err := sys.Engine.Register(rule); err != nil {
			return err
		}
		log.Printf("registered rule %s (car-rental running example)", rule.ID)
	}
	for _, file := range rules {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		rule, err := ruleml.ParseString(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if err := sys.Engine.Register(rule); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		log.Printf("registered rule %s from %s", rule.ID, file)
	}
	select {} // serve forever
}
