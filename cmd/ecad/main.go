// Command ecad runs the ECA engine daemon: the engine, the Generic Request
// Handler and every bundled component language service, exposed over HTTP
// (see system.Mux for the endpoint map). Rules and documents can be loaded
// at startup or pushed at runtime with ecactl.
//
// Usage:
//
//	ecad -addr :8080 [-rule file.xml]... [-doc uri=file.xml]... \
//	     [-datalog rules.dl] [-travel] [-distribute] [-metrics] [-pprof] [-v] \
//	     [-log-level info] [-log-format text|json] \
//	     [-retries N] [-breaker-failures N] [-breaker-cooldown 30s] \
//	     [-cache-entries N] [-cache-ttl 30s] [-compile-cache-entries N] \
//	     [-shard-tuples N] [-max-shards K] \
//	     [-data-dir DIR] [-fsync always|interval|never] [-snapshot-every N] \
//	     [-node-id ID -peers id=url,id=url,...] [-replicate-to ID|none] \
//	     [-probe-interval 1s] [-peer-down-after N] [-max-pending-events N] \
//	     [-detect-partitions W] [-partition-queue N] \
//	     [-default-tenant ID] [-tenant-quotas tenant:key=value,...]...
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the HTTP listener
// stops accepting requests, then the engine drains every in-flight rule
// instance before the process exits. -retries and -breaker-* configure
// the GRH resilience layer (see docs/RESILIENCE.md); -cache-* and
// -shard-*/-max-shards configure the GRH throughput layer (see
// docs/PERFORMANCE.md).
//
// With -data-dir the daemon is durable: rule registrations and accepted
// events are written to a checksummed write-ahead journal under DIR, and
// on start the daemon recovers the previous run's rules and any orphaned
// events before serving traffic (see docs/DURABILITY.md). Without
// -data-dir everything stays in memory, the historical behaviour.
//
// With -node-id and -peers the daemon joins a static cluster of ecad
// replicas: rules are partitioned across the peers by consistent hash on
// rule id, events are forwarded to the replicas whose rules match them,
// and (when durable) the journal is streamed to a follower that takes the
// partition over if this node dies (see docs/CLUSTERING.md). Without
// -peers the daemon runs single-node, behaviourally unchanged.
//
// The daemon is multi-tenant: a rule or event carrying an X-ECA-Tenant
// header (or ?tenant= parameter) lands in that tenant's isolated rule
// space; requests naming no tenant use the default tenant, whose
// behaviour is byte-identical with builds that predate multi-tenancy.
// -tenant-quotas caps a tenant's rules, in-flight events and event rate
// ("*" sets the quotas undeclared tenants get); see docs/MULTITENANCY.md.
//
// With -travel the daemon preloads the paper's car-rental scenario
// (documents, opaque service endpoints and the Fig. 4 rule). With
// -distribute the GRH re-registers every service as a remote endpoint of
// this daemon, so all component traffic flows through the HTTP wire
// protocol (the distributed deployment of Fig. 3).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/compilecache"
	"repro/internal/datalog"
	"repro/internal/domain/travel"
	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/ruleml"
	"repro/internal/store"
	"repro/internal/system"
	"repro/internal/tenant"
	"repro/internal/xmltree"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

// options carries the parsed command-line configuration.
type options struct {
	addr            string
	datalogSrc      string
	registry        string
	loadTravel      bool
	distribute      bool
	metrics         bool
	pprof           bool
	verbose         bool
	logLevel        string
	logFormat       string
	retries         int
	breakerFailures int
	breakerCooldown time.Duration
	cacheEntries    int
	cacheTTL        time.Duration
	compileEntries  int
	shardTuples     int
	maxShards       int
	dataDir         string
	fsync           string
	snapshotEvery   int
	nodeID          string
	peers           string
	replicateTo     string
	probeInterval   time.Duration
	peerDownAfter   int
	maxPending      int
	detectParts     int
	partitionQueue  int
	defaultTenant   string
	tenantQuotas    []string
	rules           []string
	docs            []string
}

// parsePeers reads the -peers value: comma-separated id=url pairs naming
// every cluster member, including this node.
func parsePeers(s string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers wants id=url pairs, got %q", pair)
		}
		peers = append(peers, cluster.Peer{ID: id, URL: url})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return peers, nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&o.datalogSrc, "datalog", "", "Datalog rulebase file for the LP query service")
	flag.StringVar(&o.registry, "registry", "", "Turtle file with language-service descriptions to register (ontology-driven dispatch)")
	flag.BoolVar(&o.loadTravel, "travel", false, "preload the car-rental running example")
	flag.BoolVar(&o.distribute, "distribute", false, "route all component traffic over this daemon's HTTP endpoints")
	flag.BoolVar(&o.metrics, "metrics", true, "expose /metrics and /debug/traces (observability hub)")
	flag.BoolVar(&o.pprof, "pprof", true, "expose runtime profiling under /debug/pprof/")
	flag.BoolVar(&o.verbose, "v", false, "log engine evaluation traces (at debug level)")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log encoding: text or json")
	flag.IntVar(&o.retries, "retries", 2, "GRH retries after the first attempt for idempotent dispatches (queries/tests; 0 disables)")
	flag.IntVar(&o.breakerFailures, "breaker-failures", grh.DefaultBreakerPolicy.FailureThreshold, "consecutive endpoint failures that trip the GRH circuit breaker (0 disables)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", grh.DefaultBreakerPolicy.Cooldown, "how long an open circuit breaker sheds load before probing the endpoint again")
	flag.IntVar(&o.cacheEntries, "cache-entries", 0, "GRH answer cache size for idempotent dispatches (queries/tests; 0 disables caching and coalescing)")
	flag.DurationVar(&o.cacheTTL, "cache-ttl", grh.DefaultCacheTTL, "how long a cached answer may be served (staleness bound)")
	flag.IntVar(&o.compileEntries, "compile-cache-entries", compilecache.DefaultCapacity, "compiled-expression cache size shared by the component languages (0 disables compile caching)")
	flag.IntVar(&o.shardTuples, "shard-tuples", 0, "shard idempotent dispatches whose input relation exceeds this many tuples (0 disables partitioning)")
	flag.IntVar(&o.maxShards, "max-shards", grh.DefaultMaxShards, "concurrent shard fan-out cap per partitioned dispatch")
	flag.StringVar(&o.dataDir, "data-dir", "", "durable store directory for the rule/event journal (empty = in-memory only)")
	flag.StringVar(&o.fsync, "fsync", string(store.FsyncInterval), "journal fsync policy: always, interval or never")
	flag.IntVar(&o.snapshotEvery, "snapshot-every", store.DefaultSnapshotEvery, "journal records between snapshot + compaction (negative disables automatic snapshots)")
	flag.StringVar(&o.nodeID, "node-id", "", "this node's id in a clustered deployment (requires -peers)")
	flag.StringVar(&o.peers, "peers", "", "static cluster member list as id=url,id=url,... including this node")
	flag.StringVar(&o.replicateTo, "replicate-to", "", "peer id to stream the journal to (empty = sorted successor, none = disable replication)")
	flag.DurationVar(&o.probeInterval, "probe-interval", cluster.DefaultProbeInterval, "cluster health-probe cadence")
	flag.IntVar(&o.peerDownAfter, "peer-down-after", cluster.DefaultDownAfter, "consecutive failed probes before a peer is declared down")
	flag.IntVar(&o.maxPending, "max-pending-events", 0, "max concurrent POST /events requests before shedding with 429 (0 = unlimited)")
	flag.IntVar(&o.detectParts, "detect-partitions", 0, "shard SNOOP/matcher detection across this many pinned partition workers (0 = inline, fully synchronous)")
	flag.IntVar(&o.partitionQueue, "partition-queue", 0, "per-partition detection queue capacity (0 = default; full queues back-pressure event admission)")
	flag.StringVar(&o.defaultTenant, "default-tenant", "", "tenant id that tenant-less requests resolve to (default \"public\")")
	var rules, docs, quotas repeated
	flag.Var(&rules, "rule", "rule file to register at startup (repeatable)")
	flag.Var(&docs, "doc", "uri=file pair to load into the document store (repeatable)")
	flag.Var(&quotas, "tenant-quotas", "per-tenant quotas as tenant:max-rules=N,max-pending-events=N,rate=R,burst=N (tenant may be \"*\"; repeatable)")
	flag.Parse()
	o.rules, o.docs, o.tenantQuotas = rules, docs, quotas

	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

func run(o options) error {
	level, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	if o.verbose && level > slog.LevelDebug {
		// -v means "show me the evaluation traces"; they are debug-level.
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, o.logFormat, level)

	cfg := system.Config{Namespaces: travel.Namespaces(), Log: logger, PProf: o.pprof, DefaultTenant: o.defaultTenant}
	for _, spec := range o.tenantQuotas {
		id, q, err := tenant.ParseQuotaSpec(spec)
		if err != nil {
			return fmt.Errorf("-tenant-quotas: %w", err)
		}
		if cfg.TenantQuotas == nil {
			cfg.TenantQuotas = map[string]tenant.Quotas{}
		}
		cfg.TenantQuotas[id] = q
	}
	if o.metrics {
		cfg.Obs = obs.NewHub()
		stop := obs.StartRuntimeSampler(cfg.Obs.Metrics(), obs.DefaultSampleInterval)
		defer stop()
	}
	if o.verbose {
		cfg.Logger = engine.LoggerFunc(func(format string, args ...any) {
			logger.Debug(fmt.Sprintf(format, args...))
		})
	}
	if o.retries > 0 {
		cfg.Retry = grh.DefaultRetryPolicy
		cfg.Retry.MaxAttempts = o.retries + 1
	}
	if o.breakerFailures > 0 {
		cfg.Breaker = grh.BreakerPolicy{FailureThreshold: o.breakerFailures, Cooldown: o.breakerCooldown}
	}
	compilecache.Default.SetCapacity(o.compileEntries)
	if o.cacheEntries > 0 {
		cfg.Cache = grh.CachePolicy{MaxEntries: o.cacheEntries, TTL: o.cacheTTL}
	}
	if o.shardTuples > 0 {
		cfg.Partition = grh.PartitionPolicy{MaxTuples: o.shardTuples, MaxShards: o.maxShards}
	}
	if o.dataDir != "" {
		policy, err := store.ParseFsyncPolicy(o.fsync)
		if err != nil {
			return fmt.Errorf("-fsync: %w", err)
		}
		st, err := store.Open(o.dataDir, store.Options{
			Fsync:         policy,
			SnapshotEvery: o.snapshotEvery,
			Obs:           cfg.Obs,
			Log:           logger,
		})
		if err != nil {
			return err
		}
		cfg.Store = st
	}
	cfg.MaxPendingEvents = o.maxPending
	cfg.DetectorPartitions = o.detectParts
	cfg.PartitionQueue = o.partitionQueue
	if o.peers != "" || o.nodeID != "" {
		if o.nodeID == "" || o.peers == "" {
			return fmt.Errorf("clustering needs both -node-id and -peers")
		}
		peers, err := parsePeers(o.peers)
		if err != nil {
			return err
		}
		cfg.Cluster = &cluster.Options{
			NodeID:        o.nodeID,
			Peers:         peers,
			ReplicateTo:   o.replicateTo,
			ProbeInterval: o.probeInterval,
			DownAfter:     o.peerDownAfter,
			Obs:           cfg.Obs,
			Log:           logger,
		}
	}
	if o.datalogSrc != "" {
		src, err := os.ReadFile(o.datalogSrc)
		if err != nil {
			return err
		}
		prog, err := datalog.Parse(string(src))
		if err != nil {
			return err
		}
		cfg.Datalog = prog
	}
	sys, err := system.NewLocal(cfg)
	if err != nil {
		return err
	}
	for _, pair := range o.docs {
		uri, file, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-doc wants uri=file, got %q", pair)
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		doc, err := xmltree.ParseString(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		sys.Store.Put(uri, doc)
	}

	if o.registry != "" {
		f, err := os.Open(o.registry)
		if err != nil {
			return err
		}
		n, err := ontology.RegisterFromTurtle(sys.GRH, f)
		f.Close()
		if err != nil {
			return err
		}
		logger.Info("language services registered from ontology", "count", n, "file", o.registry)
	}

	var opaqueDoc *xmltree.Node
	if o.loadTravel {
		travel.LoadStore(sys.Store)
		opaqueDoc = xmltree.MustParse(travel.ClassesXML)
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	mux := sys.Mux(opaqueDoc, travel.Namespaces())
	srv := &http.Server{Handler: mux}

	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			serveErr <- err
		}
	}()
	logger.Info("ecad listening", "addr", base)
	if o.metrics {
		logger.Info("observability on", "metrics", base+"/metrics", "traces", base+"/debug/traces", "healthz", base+"/healthz")
	}
	if o.pprof {
		logger.Info("profiling on", "pprof", base+"/debug/pprof/")
	}
	if o.retries > 0 || o.breakerFailures > 0 {
		logger.Info("resilience configured", "retries", o.retries,
			"breaker_failures", o.breakerFailures, "breaker_cooldown", o.breakerCooldown.String())
	}
	if o.cacheEntries > 0 {
		logger.Info("answer cache on", "entries", o.cacheEntries, "ttl", o.cacheTTL.String())
	}
	if o.shardTuples > 0 {
		logger.Info("partitioned dispatch on", "shard_tuples", o.shardTuples, "max_shards", o.maxShards)
	}
	if o.detectParts > 0 {
		logger.Info("partitioned detection on", "partitions", o.detectParts, "queue", o.partitionQueue)
	}

	if o.distribute {
		if err := sys.Distribute(base); err != nil {
			return err
		}
		logger.Info("distributed mode: component traffic routed over HTTP", "base", base)
	}
	if sys.Durable != nil {
		stats, err := sys.Recover()
		if err != nil {
			return err
		}
		logger.Info("durable store recovered", "dir", o.dataDir, "fsync", o.fsync,
			"rules", stats.Rules, "events", stats.Events, "skipped", stats.Skipped)
	}
	// A startup rule colliding with a recovered one (same id, e.g. the
	// car-rental rule after a restart) is already live — not an error.
	registerStartup := func(rule *ruleml.Rule) (bool, error) {
		err := sys.Engine.Register(rule)
		if err == nil {
			return true, nil
		}
		if sys.Durable != nil && errors.Is(err, engine.ErrDuplicateRule) {
			logger.Info("rule already recovered from the durable store", "rule", rule.ID)
			return false, nil
		}
		return false, err
	}
	if o.loadTravel {
		rule, err := ruleml.ParseString(travel.RuleXML(base+"/opaque/store", base+"/opaque/xquery"))
		if err != nil {
			return err
		}
		fresh, err := registerStartup(rule)
		if err != nil {
			return err
		}
		if fresh {
			logger.Info("rule registered", "rule", rule.ID, "source", "car-rental running example")
		}
	}
	for _, file := range o.rules {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		rule, err := ruleml.ParseString(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		fresh, err := registerStartup(rule)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if fresh {
			logger.Info("rule registered", "rule", rule.ID, "file", file)
		}
	}
	if sys.Cluster != nil {
		// After recovery and startup rules, so the journal shipper's opening
		// base sync mirrors the node's full live state.
		sys.StartCluster()
		logger.Info("cluster node started", "node", sys.Cluster.ID(),
			"peers", o.peers, "replicate_to", sys.Cluster.Follower())
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting HTTP first,
	// then let the engine finish every in-flight rule instance.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.Info("signal received, shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "error", err.Error())
	}
	sys.Close()
	logger.Info("drained, bye")
	return nil
}
