// Command ecad runs the ECA engine daemon: the engine, the Generic Request
// Handler and every bundled component language service, exposed over HTTP
// (see system.Mux for the endpoint map). Rules and documents can be loaded
// at startup or pushed at runtime with ecactl.
//
// Usage:
//
//	ecad -addr :8080 [-rule file.xml]... [-doc uri=file.xml]... \
//	     [-datalog rules.dl] [-travel] [-distribute] [-metrics] [-pprof] [-v] \
//	     [-log-level info] [-log-format text|json] \
//	     [-retries N] [-breaker-failures N] [-breaker-cooldown 30s] \
//	     [-cache-entries N] [-cache-ttl 30s] [-shard-tuples N] [-max-shards K]
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the HTTP listener
// stops accepting requests, then the engine drains every in-flight rule
// instance before the process exits. -retries and -breaker-* configure
// the GRH resilience layer (see docs/RESILIENCE.md); -cache-* and
// -shard-*/-max-shards configure the GRH throughput layer (see
// docs/PERFORMANCE.md).
//
// With -travel the daemon preloads the paper's car-rental scenario
// (documents, opaque service endpoints and the Fig. 4 rule). With
// -distribute the GRH re-registers every service as a remote endpoint of
// this daemon, so all component traffic flows through the HTTP wire
// protocol (the distributed deployment of Fig. 3).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/datalog"
	"repro/internal/domain/travel"
	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/ruleml"
	"repro/internal/system"
	"repro/internal/xmltree"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

// options carries the parsed command-line configuration.
type options struct {
	addr            string
	datalogSrc      string
	registry        string
	loadTravel      bool
	distribute      bool
	metrics         bool
	pprof           bool
	verbose         bool
	logLevel        string
	logFormat       string
	retries         int
	breakerFailures int
	breakerCooldown time.Duration
	cacheEntries    int
	cacheTTL        time.Duration
	shardTuples     int
	maxShards       int
	rules           []string
	docs            []string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&o.datalogSrc, "datalog", "", "Datalog rulebase file for the LP query service")
	flag.StringVar(&o.registry, "registry", "", "Turtle file with language-service descriptions to register (ontology-driven dispatch)")
	flag.BoolVar(&o.loadTravel, "travel", false, "preload the car-rental running example")
	flag.BoolVar(&o.distribute, "distribute", false, "route all component traffic over this daemon's HTTP endpoints")
	flag.BoolVar(&o.metrics, "metrics", true, "expose /metrics and /debug/traces (observability hub)")
	flag.BoolVar(&o.pprof, "pprof", true, "expose runtime profiling under /debug/pprof/")
	flag.BoolVar(&o.verbose, "v", false, "log engine evaluation traces (at debug level)")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log encoding: text or json")
	flag.IntVar(&o.retries, "retries", 2, "GRH retries after the first attempt for idempotent dispatches (queries/tests; 0 disables)")
	flag.IntVar(&o.breakerFailures, "breaker-failures", grh.DefaultBreakerPolicy.FailureThreshold, "consecutive endpoint failures that trip the GRH circuit breaker (0 disables)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", grh.DefaultBreakerPolicy.Cooldown, "how long an open circuit breaker sheds load before probing the endpoint again")
	flag.IntVar(&o.cacheEntries, "cache-entries", 0, "GRH answer cache size for idempotent dispatches (queries/tests; 0 disables caching and coalescing)")
	flag.DurationVar(&o.cacheTTL, "cache-ttl", grh.DefaultCacheTTL, "how long a cached answer may be served (staleness bound)")
	flag.IntVar(&o.shardTuples, "shard-tuples", 0, "shard idempotent dispatches whose input relation exceeds this many tuples (0 disables partitioning)")
	flag.IntVar(&o.maxShards, "max-shards", grh.DefaultMaxShards, "concurrent shard fan-out cap per partitioned dispatch")
	var rules, docs repeated
	flag.Var(&rules, "rule", "rule file to register at startup (repeatable)")
	flag.Var(&docs, "doc", "uri=file pair to load into the document store (repeatable)")
	flag.Parse()
	o.rules, o.docs = rules, docs

	if err := run(o); err != nil {
		log.Fatal(err)
	}
}

func run(o options) error {
	level, err := obs.ParseLevel(o.logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	if o.verbose && level > slog.LevelDebug {
		// -v means "show me the evaluation traces"; they are debug-level.
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, o.logFormat, level)

	cfg := system.Config{Namespaces: travel.Namespaces(), Log: logger, PProf: o.pprof}
	if o.metrics {
		cfg.Obs = obs.NewHub()
		stop := obs.StartRuntimeSampler(cfg.Obs.Metrics(), obs.DefaultSampleInterval)
		defer stop()
	}
	if o.verbose {
		cfg.Logger = engine.LoggerFunc(func(format string, args ...any) {
			logger.Debug(fmt.Sprintf(format, args...))
		})
	}
	if o.retries > 0 {
		cfg.Retry = grh.DefaultRetryPolicy
		cfg.Retry.MaxAttempts = o.retries + 1
	}
	if o.breakerFailures > 0 {
		cfg.Breaker = grh.BreakerPolicy{FailureThreshold: o.breakerFailures, Cooldown: o.breakerCooldown}
	}
	if o.cacheEntries > 0 {
		cfg.Cache = grh.CachePolicy{MaxEntries: o.cacheEntries, TTL: o.cacheTTL}
	}
	if o.shardTuples > 0 {
		cfg.Partition = grh.PartitionPolicy{MaxTuples: o.shardTuples, MaxShards: o.maxShards}
	}
	if o.datalogSrc != "" {
		src, err := os.ReadFile(o.datalogSrc)
		if err != nil {
			return err
		}
		prog, err := datalog.Parse(string(src))
		if err != nil {
			return err
		}
		cfg.Datalog = prog
	}
	sys, err := system.NewLocal(cfg)
	if err != nil {
		return err
	}
	for _, pair := range o.docs {
		uri, file, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-doc wants uri=file, got %q", pair)
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		doc, err := xmltree.ParseString(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		sys.Store.Put(uri, doc)
	}

	if o.registry != "" {
		f, err := os.Open(o.registry)
		if err != nil {
			return err
		}
		n, err := ontology.RegisterFromTurtle(sys.GRH, f)
		f.Close()
		if err != nil {
			return err
		}
		logger.Info("language services registered from ontology", "count", n, "file", o.registry)
	}

	var opaqueDoc *xmltree.Node
	if o.loadTravel {
		travel.LoadStore(sys.Store)
		opaqueDoc = xmltree.MustParse(travel.ClassesXML)
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	mux := sys.Mux(opaqueDoc, travel.Namespaces())
	srv := &http.Server{Handler: mux}

	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			serveErr <- err
		}
	}()
	logger.Info("ecad listening", "addr", base)
	if o.metrics {
		logger.Info("observability on", "metrics", base+"/metrics", "traces", base+"/debug/traces", "healthz", base+"/healthz")
	}
	if o.pprof {
		logger.Info("profiling on", "pprof", base+"/debug/pprof/")
	}
	if o.retries > 0 || o.breakerFailures > 0 {
		logger.Info("resilience configured", "retries", o.retries,
			"breaker_failures", o.breakerFailures, "breaker_cooldown", o.breakerCooldown.String())
	}
	if o.cacheEntries > 0 {
		logger.Info("answer cache on", "entries", o.cacheEntries, "ttl", o.cacheTTL.String())
	}
	if o.shardTuples > 0 {
		logger.Info("partitioned dispatch on", "shard_tuples", o.shardTuples, "max_shards", o.maxShards)
	}

	if o.distribute {
		if err := sys.Distribute(base); err != nil {
			return err
		}
		logger.Info("distributed mode: component traffic routed over HTTP", "base", base)
	}
	if o.loadTravel {
		rule, err := ruleml.ParseString(travel.RuleXML(base+"/opaque/store", base+"/opaque/xquery"))
		if err != nil {
			return err
		}
		if err := sys.Engine.Register(rule); err != nil {
			return err
		}
		logger.Info("rule registered", "rule", rule.ID, "source", "car-rental running example")
	}
	for _, file := range o.rules {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		rule, err := ruleml.ParseString(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if err := sys.Engine.Register(rule); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		logger.Info("rule registered", "rule", rule.ID, "file", file)
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting HTTP first,
	// then let the engine finish every in-flight rule instance.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.Info("signal received, shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "error", err.Error())
	}
	sys.Close()
	logger.Info("drained, bye")
	return nil
}
