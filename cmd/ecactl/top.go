package main

import (
	"fmt"
	"io"
	"net/http"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

// clusterTop renders a live per-node table from the federated
// /cluster/metrics view: each refresh scrapes the endpoint, diffs the
// counters and the event_e2e_seconds histogram against the previous
// scrape, and prints one row per node — events/sec admitted, the p95
// admit→action latency over the interval, and the two queue-depth
// gauges (admission slots held, engine worker queue). iterations == 0
// refreshes until the process is interrupted.
func clusterTop(out io.Writer, base string, every time.Duration, iterations int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	prev, err := scrapeCluster(client, base)
	if err != nil {
		return err
	}
	prevAt := time.Now()
	for i := 0; iterations == 0 || i < iterations; i++ {
		time.Sleep(every)
		cur, err := scrapeCluster(client, base)
		if err != nil {
			return err
		}
		now := time.Now()
		renderTop(out, prev, cur, now.Sub(prevAt))
		prev, prevAt = cur, now
	}
	return nil
}

// scrapeCluster fetches and parses the federated exposition.
func scrapeCluster(client *http.Client, base string) (*obs.Exposition, error) {
	resp, err := client.Get(base + "/cluster/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET /cluster/metrics: HTTP %d: %s", resp.StatusCode, body)
	}
	return obs.ParseExposition(resp.Body)
}

// renderTop writes one refresh of the per-node table. Rates and the p95
// come from the delta between two scrapes, so they describe the sampled
// interval, not the node's lifetime. A node present in cur but not prev
// (it just came up, or federation just recovered it) gets its rates from
// a zero baseline.
func renderTop(out io.Writer, prev, cur *obs.Exposition, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tEV/S\tP95\tCOMPLETED\tPENDING\tQUEUE")
	for _, node := range cur.LabelValues("node") {
		sel := map[string]string{"node": node}
		rate := (cur.Sum("events_admitted_total", sel) - prev.Sum("events_admitted_total", sel)) / secs
		d := cur.HistogramDist("event_e2e_seconds", sel).Sub(prev.HistogramDist("event_e2e_seconds", sel))
		p95 := "-"
		if d.Count > 0 {
			p95 = time.Duration(d.Quantile(0.95) * float64(time.Second)).Round(10 * time.Microsecond).String()
		}
		pending, _ := cur.Value("events_pending", sel)
		queued, _ := cur.Value("engine_queue_depth", sel)
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%d\t%.0f\t%.0f\n", node, rate, p95, d.Count, pending, queued)
	}
	tw.Flush()
}
