// Command ecactl is the client for an ecad daemon:
//
//	ecactl [-s http://127.0.0.1:8080] register rule.xml
//	ecactl [-s http://127.0.0.1:8080] unregister rule-id
//	ecactl [-s http://127.0.0.1:8080] event event.xml
//	ecactl [-s http://127.0.0.1:8080] event -            (read from stdin)
//	ecactl [-s http://127.0.0.1:8080] book "John Doe" Munich Paris
//	ecactl [-s http://127.0.0.1:8080] rules
//	ecactl [-s http://127.0.0.1:8080] stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/url"
	"os"
	"strings"

	"repro/internal/domain/travel"
)

func main() {
	server := flag.String("s", "http://127.0.0.1:8080", "ecad base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var err error
	switch args[0] {
	case "register":
		if len(args) != 2 {
			usage()
		}
		err = postFile(*server+"/engine/rules", args[1])
	case "unregister":
		if len(args) != 2 {
			usage()
		}
		err = del(*server + "/engine/rules/" + url.PathEscape(args[1]))
	case "event":
		if len(args) != 2 {
			usage()
		}
		err = postFile(*server+"/events", args[1])
	case "book":
		if len(args) != 4 {
			usage()
		}
		err = post(*server+"/events", strings.NewReader(travel.Booking(args[1], args[2], args[3]).String()))
	case "stats":
		err = get(*server + "/engine/stats")
	case "rules":
		err = get(*server + "/engine/rules?format=ids")
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ecactl [-s URL] register <rule.xml> | unregister <rule-id> | event <file|-> | book <person> <from> <to> | rules | stats`)
	os.Exit(2)
}
