// Command ecactl is the client for an ecad daemon:
//
//	ecactl [-s http://127.0.0.1:8080] register rule.xml
//	ecactl [-s http://127.0.0.1:8080] unregister rule-id
//	ecactl [-s http://127.0.0.1:8080] event event.xml
//	ecactl [-s http://127.0.0.1:8080] event -            (read from stdin)
//	ecactl [-s http://127.0.0.1:8080] book "John Doe" Munich Paris
//	ecactl [-s http://127.0.0.1:8080] rules
//	ecactl [-s http://127.0.0.1:8080] stats
//	ecactl [-s http://127.0.0.1:8080] cluster status
//	ecactl [-s http://127.0.0.1:8080] cluster top [-every 2s] [-n 0]
//
// cluster top renders a live per-node table from the daemon's federated
// /cluster/metrics view: events/sec admitted, the p95 admit→action
// latency over each sampling interval, and the admission/engine queue
// depths. -n bounds the number of refreshes (0 = until interrupted).
//
// The default endpoint is taken from the ECA_ENDPOINT environment
// variable when set; -s overrides it. Likewise -tenant scopes every
// command to one tenant's rule space on a multi-tenant daemon, defaulting
// to the ECA_TENANT environment variable (flag > env > daemon default).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/domain/travel"
)

// defaultEndpoint resolves the daemon base URL when -s is not given: the
// ECA_ENDPOINT environment variable if set, the local default otherwise.
func defaultEndpoint(getenv func(string) string) string {
	if ep := strings.TrimSpace(getenv("ECA_ENDPOINT")); ep != "" {
		return strings.TrimRight(ep, "/")
	}
	return "http://127.0.0.1:8080"
}

// defaultTenant resolves the tenant when -tenant is not given: the
// ECA_TENANT environment variable if set, otherwise empty — the daemon's
// default tenant.
func defaultTenant(getenv func(string) string) string {
	return strings.TrimSpace(getenv("ECA_TENANT"))
}

func main() {
	server := flag.String("s", defaultEndpoint(os.Getenv), "ecad base URL (default honours $ECA_ENDPOINT)")
	flag.StringVar(&tenantID, "tenant", defaultTenant(os.Getenv), "tenant whose rule space the command addresses (default honours $ECA_TENANT; empty = daemon default)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var err error
	switch args[0] {
	case "register":
		if len(args) != 2 {
			usage()
		}
		err = postFile(*server+"/engine/rules", args[1])
	case "unregister":
		if len(args) != 2 {
			usage()
		}
		err = del(*server + "/engine/rules/" + url.PathEscape(args[1]))
	case "event":
		if len(args) != 2 {
			usage()
		}
		err = postFile(*server+"/events", args[1])
	case "book":
		if len(args) != 4 {
			usage()
		}
		err = post(*server+"/events", strings.NewReader(travel.Booking(args[1], args[2], args[3]).String()))
	case "stats":
		err = get(*server + "/engine/stats")
	case "rules":
		err = get(*server + "/engine/rules?format=ids")
	case "cluster":
		if len(args) < 2 {
			usage()
		}
		switch args[1] {
		case "status":
			if len(args) != 2 {
				usage()
			}
			err = get(*server + "/cluster/status")
		case "top":
			fs := flag.NewFlagSet("cluster top", flag.ExitOnError)
			every := fs.Duration("every", 2*time.Second, "sampling interval between /cluster/metrics scrapes")
			n := fs.Int("n", 0, "number of table refreshes (0 = until interrupted)")
			fs.Parse(args[2:])
			err = clusterTop(os.Stdout, *server, *every, *n)
		default:
			usage()
		}
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ecactl [-s URL] [-tenant ID] register <rule.xml> | unregister <rule-id> | event <file|-> | book <person> <from> <to> | rules | stats | cluster status | cluster top [-every 2s] [-n 0]`)
	os.Exit(2)
}
