// Command ecactl is the client for an ecad daemon:
//
//	ecactl [-s http://127.0.0.1:8080] register rule.xml
//	ecactl [-s http://127.0.0.1:8080] event event.xml
//	ecactl [-s http://127.0.0.1:8080] event -            (read from stdin)
//	ecactl [-s http://127.0.0.1:8080] book "John Doe" Munich Paris
//	ecactl [-s http://127.0.0.1:8080] rules
//	ecactl [-s http://127.0.0.1:8080] stats
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/domain/travel"
)

func main() {
	server := flag.String("s", "http://127.0.0.1:8080", "ecad base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var err error
	switch args[0] {
	case "register":
		if len(args) != 2 {
			usage()
		}
		err = postFile(*server+"/engine/rules", args[1])
	case "event":
		if len(args) != 2 {
			usage()
		}
		err = postFile(*server+"/events", args[1])
	case "book":
		if len(args) != 4 {
			usage()
		}
		err = post(*server+"/events", strings.NewReader(travel.Booking(args[1], args[2], args[3]).String()))
	case "stats":
		err = get(*server + "/engine/stats")
	case "rules":
		err = get(*server + "/engine/rules")
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ecactl [-s URL] register <rule.xml> | event <file|-> | book <person> <from> <to> | rules | stats`)
	os.Exit(2)
}

func postFile(url, file string) error {
	var r io.Reader
	if file == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	return post(url, r)
}

func post(url string, body io.Reader) error {
	resp, err := http.Post(url, "application/xml", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(out)))
	}
	fmt.Print(string(out))
	return nil
}

func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(out)))
	}
	fmt.Print(string(out))
	return nil
}
