package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeFederation serves two successive /cluster/metrics expositions: the
// second scrape shows 10 more admitted events and one e2e completion on
// n1, nothing new on n2.
func fakeFederation(t *testing.T) *httptest.Server {
	t.Helper()
	expositions := make([]string, 0, 2)
	for _, extra := range []struct {
		admitted int64
		e2eObs   []float64
	}{{0, nil}, {10, []float64{0.25}}} {
		var parts []*obs.Exposition
		for _, node := range []string{"n1", "n2"} {
			reg := obs.NewRegistry()
			c := reg.Counter("events_admitted_total", "Events accepted.")
			c.Add(100)
			h := reg.Histogram("event_e2e_seconds", "E2E latency.", []float64{0.1, 0.5, 1})
			h.Observe(0.05)
			reg.Gauge("events_pending", "Slots held.").Set(3)
			reg.Gauge("engine_queue_depth", "Queued instances.").Set(2)
			if node == "n1" {
				c.Add(extra.admitted)
				for _, v := range extra.e2eObs {
					h.Observe(v)
				}
			}
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
			exp, err := obs.ParseExposition(&buf)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			exp.AddLabel("node", node)
			parts = append(parts, exp)
		}
		var buf bytes.Buffer
		obs.MergeExpositions(parts...).WritePrometheus(&buf)
		expositions = append(expositions, buf.String())
	}
	scrape := 0
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster/metrics" {
			http.NotFound(w, r)
			return
		}
		body := expositions[len(expositions)-1]
		if scrape < len(expositions) {
			body = expositions[scrape]
		}
		scrape++
		w.Write([]byte(body))
	}))
}

func TestClusterTop(t *testing.T) {
	srv := fakeFederation(t)
	defer srv.Close()

	var out bytes.Buffer
	if err := clusterTop(&out, srv.URL, time.Millisecond, 1); err != nil {
		t.Fatalf("clusterTop: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "NODE") || !strings.Contains(got, "EV/S") {
		t.Fatalf("missing header:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 node rows, got:\n%s", got)
	}
	var n1, n2 string
	for _, l := range lines[1:] {
		switch {
		case strings.HasPrefix(l, "n1"):
			n1 = l
		case strings.HasPrefix(l, "n2"):
			n2 = l
		}
	}
	if n1 == "" || n2 == "" {
		t.Fatalf("missing node rows:\n%s", got)
	}
	// n1 gained one completion in the 0.1–0.5 bucket: its p95 interpolates
	// inside that bucket, n2 (no new completions) shows the placeholder.
	f1 := strings.Fields(n1)
	if f1[3] != "1" {
		t.Errorf("n1 completed column = %q, want 1 (row %q)", f1[3], n1)
	}
	if !strings.Contains(n1, "ms") && !strings.Contains(n1, "s") {
		t.Errorf("n1 p95 not a duration: %q", n1)
	}
	f2 := strings.Fields(n2)
	if f2[1] != "0.0" || f2[2] != "-" || f2[3] != "0" {
		t.Errorf("n2 idle row = %q, want zero rate and '-' p95", n2)
	}
	// The gauges are instantaneous, not deltas.
	if f1[4] != "3" || f1[5] != "2" {
		t.Errorf("n1 gauge columns = %q, want pending 3 queue 2", n1)
	}
}

func TestClusterTopScrapeError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if err := clusterTop(&bytes.Buffer{}, srv.URL, time.Millisecond, 1); err == nil {
		t.Fatal("want error on 404 endpoint")
	}
}
