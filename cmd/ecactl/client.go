package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/protocol"
)

// tenantID scopes every request to one tenant's rule space; empty
// addresses the daemon's default tenant (set by -tenant or $ECA_TENANT
// in main).
var tenantID string

// doRequest performs one HTTP exchange against the daemon and writes the
// response body to out. On a non-2xx status the body (the daemon's error
// message) is part of the returned error instead of being discarded, so
// the user sees why the daemon refused.
func doRequest(out io.Writer, method, url string, body io.Reader) error {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/xml")
	}
	if tenantID != "" {
		req.Header.Set(protocol.TenantHeader, tenantID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := strings.TrimSpace(string(data))
		if msg == "" {
			msg = "(empty response body)"
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
	if err != nil {
		return err
	}
	_, err = out.Write(data)
	return err
}

func post(url string, body io.Reader) error {
	return doRequest(os.Stdout, http.MethodPost, url, body)
}

func get(url string) error {
	return doRequest(os.Stdout, http.MethodGet, url, nil)
}

func del(url string) error {
	return doRequest(os.Stdout, http.MethodDelete, url, nil)
}

func postFile(url, file string) error {
	var r io.Reader
	if file == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	return post(url, r)
}
