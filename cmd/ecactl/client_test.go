package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/protocol"
)

func TestDoRequestPrintsBodyOnSuccess(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			t.Errorf("method = %s", r.Method)
		}
		w.Write([]byte("rule-1\nrule-2\n"))
	}))
	defer srv.Close()
	var out bytes.Buffer
	if err := doRequest(&out, http.MethodGet, srv.URL, nil); err != nil {
		t.Fatal(err)
	}
	if out.String() != "rule-1\nrule-2\n" {
		t.Errorf("out = %q", out.String())
	}
}

// The daemon's error message (the response body) must surface in the
// returned error rather than being discarded.
func TestDoRequestSurfacesErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `ruleml: rule has no event component`, http.StatusUnprocessableEntity)
	}))
	defer srv.Close()
	var out bytes.Buffer
	err := doRequest(&out, http.MethodPost, srv.URL, strings.NewReader("<bogus/>"))
	if err == nil {
		t.Fatal("want error for 422")
	}
	for _, want := range []string{"422", "rule has no event component"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if out.Len() != 0 {
		t.Errorf("nothing should be written on error, got %q", out.String())
	}
}

func TestDoRequestEmptyErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	err := doRequest(&bytes.Buffer{}, http.MethodDelete, srv.URL, nil)
	if err == nil || !strings.Contains(err.Error(), "empty response body") {
		t.Errorf("err = %v", err)
	}
}

// Every request carries the selected tenant as the X-ECA-Tenant header —
// and no header at all when no tenant is selected, so a tenant-less
// session is byte-identical with pre-tenant clients.
func TestDoRequestStampsTenantHeader(t *testing.T) {
	var got string
	var present bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(protocol.TenantHeader)
		present = len(r.Header.Values(protocol.TenantHeader)) > 0
	}))
	defer srv.Close()

	defer func(prev string) { tenantID = prev }(tenantID)
	tenantID = "acme"
	if err := doRequest(&bytes.Buffer{}, http.MethodGet, srv.URL, nil); err != nil {
		t.Fatal(err)
	}
	if got != "acme" {
		t.Errorf("%s = %q, want %q", protocol.TenantHeader, got, "acme")
	}

	tenantID = ""
	if err := doRequest(&bytes.Buffer{}, http.MethodGet, srv.URL, nil); err != nil {
		t.Fatal(err)
	}
	if present {
		t.Errorf("%s header sent for the default tenant", protocol.TenantHeader)
	}
}

func TestDoRequestSetsContentTypeOnPost(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/xml" {
			t.Errorf("Content-Type = %q", ct)
		}
	}))
	defer srv.Close()
	if err := doRequest(&bytes.Buffer{}, http.MethodPost, srv.URL, strings.NewReader("<e/>")); err != nil {
		t.Fatal(err)
	}
}
