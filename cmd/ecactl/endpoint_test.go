package main

import "testing"

// The default endpoint honours ECA_ENDPOINT so scripted multi-node
// workflows can address each cluster member without repeating -s.
func TestDefaultEndpointHonorsEnv(t *testing.T) {
	env := func(vals map[string]string) func(string) string {
		return func(k string) string { return vals[k] }
	}
	cases := []struct {
		name string
		vals map[string]string
		want string
	}{
		{"unset", nil, "http://127.0.0.1:8080"},
		{"empty", map[string]string{"ECA_ENDPOINT": ""}, "http://127.0.0.1:8080"},
		{"blank", map[string]string{"ECA_ENDPOINT": "   "}, "http://127.0.0.1:8080"},
		{"set", map[string]string{"ECA_ENDPOINT": "http://node-2:9090"}, "http://node-2:9090"},
		{"trailing slash", map[string]string{"ECA_ENDPOINT": "http://node-2:9090/"}, "http://node-2:9090"},
	}
	for _, c := range cases {
		if got := defaultEndpoint(env(c.vals)); got != c.want {
			t.Errorf("%s: defaultEndpoint = %q, want %q", c.name, got, c.want)
		}
	}
}

// The default tenant honours ECA_TENANT so scripted multi-tenant
// workflows can scope a whole session without repeating -tenant; the
// flag, parsed after the env lookup, still overrides it.
func TestDefaultTenantHonorsEnv(t *testing.T) {
	env := func(vals map[string]string) func(string) string {
		return func(k string) string { return vals[k] }
	}
	cases := []struct {
		name string
		vals map[string]string
		want string
	}{
		{"unset", nil, ""},
		{"empty", map[string]string{"ECA_TENANT": ""}, ""},
		{"blank", map[string]string{"ECA_TENANT": "   "}, ""},
		{"set", map[string]string{"ECA_TENANT": "acme"}, "acme"},
		{"trimmed", map[string]string{"ECA_TENANT": " acme "}, "acme"},
	}
	for _, c := range cases {
		if got := defaultTenant(env(c.vals)); got != c.want {
			t.Errorf("%s: defaultTenant = %q, want %q", c.name, got, c.want)
		}
	}
}
