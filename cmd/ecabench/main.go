// Command ecabench regenerates the paper's figures and produces the
// performance series recorded in EXPERIMENTS.md:
//
//	ecabench -fig 8               # replay one figure's artifact / message flow
//	ecabench -figs                # replay all figures (1–11)
//	ecabench -series join         # run one performance series
//	ecabench -series resilience   # dispatch against flaky/dead services: retry + breaker effect
//	ecabench -all                 # figures + every series
//
// The exit status is non-zero when any figure replay fails its assertions
// (e.g. the Fig. 11 join does not leave exactly one surviving tuple) or a
// series errors; all figures are still attempted so one failure does not
// hide another.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "reproduce one figure (1–11)")
		figs   = flag.Bool("figs", false, "reproduce all figures")
		series = flag.String("series", "", "run one performance series")
		all    = flag.Bool("all", false, "figures + all series")
	)
	flag.Parse()

	failed := 0
	switch {
	case *fig != 0:
		failed += report(fmt.Sprintf("figure %d", *fig), bench.RunFigure(*fig, os.Stdout))
	case *figs:
		failed += runFigs()
	case *series != "":
		failed += report("series "+*series, bench.RunSeries(*series, os.Stdout))
	case *all:
		failed += runFigs()
		for _, s := range bench.Series() {
			fmt.Println()
			failed += report("series "+s, bench.RunSeries(s, os.Stdout))
		}
	default:
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\nfigures: %v\nseries: %v\n", bench.Figures(), bench.Series())
		os.Exit(2)
	}
	if failed > 0 {
		log.Printf("ecabench: %d replay(s) FAILED", failed)
		os.Exit(1)
	}
}

func runFigs() (failed int) {
	for _, n := range bench.Figures() {
		fmt.Printf("\n════════ Figure %d ════════\n\n", n)
		failed += report(fmt.Sprintf("figure %d", n), bench.RunFigure(n, os.Stdout))
	}
	return failed
}

// report logs a failed replay and returns 1 for it, 0 otherwise.
func report(what string, err error) int {
	if err != nil {
		log.Printf("%s: %v", what, err)
		return 1
	}
	return 0
}
