// Command ecabench regenerates the paper's figures and produces the
// performance series recorded in EXPERIMENTS.md:
//
//	ecabench -fig 8          # replay one figure's artifact / message flow
//	ecabench -figs           # replay all figures (1–11)
//	ecabench -series join    # run one performance series
//	ecabench -all            # figures + every series
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "reproduce one figure (1–11)")
		figs   = flag.Bool("figs", false, "reproduce all figures")
		series = flag.String("series", "", "run one performance series")
		all    = flag.Bool("all", false, "figures + all series")
	)
	flag.Parse()

	switch {
	case *fig != 0:
		fail(bench.RunFigure(*fig, os.Stdout))
	case *figs:
		runFigs()
	case *series != "":
		fail(bench.RunSeries(*series, os.Stdout))
	case *all:
		runFigs()
		for _, s := range bench.Series() {
			fmt.Println()
			fail(bench.RunSeries(s, os.Stdout))
		}
	default:
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\nfigures: %v\nseries: %v\n", bench.Figures(), bench.Series())
		os.Exit(2)
	}
}

func runFigs() {
	for _, n := range bench.Figures() {
		fmt.Printf("\n════════ Figure %d ════════\n\n", n)
		fail(bench.RunFigure(n, os.Stdout))
	}
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
