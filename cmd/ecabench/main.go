// Command ecabench regenerates the paper's figures and produces the
// performance series recorded in EXPERIMENTS.md:
//
//	ecabench -fig 8               # replay one figure's artifact / message flow
//	ecabench -figs                # replay all figures (1–11)
//	ecabench -series join         # run one performance series
//	ecabench -series resilience   # dispatch against flaky/dead services: retry + breaker effect
//	ecabench -series cache,partition -json BENCH_throughput.json
//	                              # GRH throughput layer, stats persisted as JSON
//	ecabench -all                 # figures + every series
//
// -series accepts a comma-separated list. With -json, the per-series
// stats (GRH dispatch p50/p95, cache hit rate, coalescing and shard
// counters) of every series run are written to the given file.
//
// The exit status is non-zero when any figure replay fails its assertions
// (e.g. the Fig. 11 join does not leave exactly one surviving tuple) or a
// series errors; all figures are still attempted so one failure does not
// hide another.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

// logger reports replay failures as structured records on stderr; wired
// from -log-level/-log-format in main before any replay runs.
var logger *obs.Logger

func main() {
	var (
		fig       = flag.Int("fig", 0, "reproduce one figure (1–11)")
		figs      = flag.Bool("figs", false, "reproduce all figures")
		series    = flag.String("series", "", "run performance series (comma-separated)")
		all       = flag.Bool("all", false, "figures + all series")
		jsonPath  = flag.String("json", "", "write per-series stats (dispatch p50/p95, cache hit rate) as JSON to this file")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "structured log encoding: text or json")
	)
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecabench: -log-level: %v\n", err)
		os.Exit(2)
	}
	logger = obs.NewLogger(os.Stderr, *logFormat, level)

	failed := 0
	var stats []bench.SeriesStats
	runSeries := func(name string) {
		st, err := bench.RunSeriesStats(name, os.Stdout)
		if err == nil {
			stats = append(stats, st)
		}
		failed += report("series "+name, err)
	}
	switch {
	case *fig != 0:
		failed += report(fmt.Sprintf("figure %d", *fig), bench.RunFigure(*fig, os.Stdout))
	case *figs:
		failed += runFigs()
	case *series != "":
		for i, s := range strings.Split(*series, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			if i > 0 {
				fmt.Println()
			}
			runSeries(s)
		}
	case *all:
		failed += runFigs()
		for _, s := range bench.Series() {
			fmt.Println()
			runSeries(s)
		}
	default:
		flag.Usage()
		fmt.Fprintf(os.Stderr, "\nfigures: %v\nseries: %v\n", bench.Figures(), bench.Series())
		os.Exit(2)
	}
	if *jsonPath != "" && len(stats) > 0 {
		out, err := json.MarshalIndent(stats, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(out, '\n'), 0o644)
		}
		if err != nil {
			logger.Error("writing stats", "file", *jsonPath, "error", err.Error())
			failed++
		} else {
			logger.Info("stats written", "file", *jsonPath, "series", len(stats))
		}
	}
	if failed > 0 {
		logger.Error("replays failed", "count", failed)
		os.Exit(1)
	}
}

func runFigs() (failed int) {
	for _, n := range bench.Figures() {
		fmt.Printf("\n════════ Figure %d ════════\n\n", n)
		failed += report(fmt.Sprintf("figure %d", n), bench.RunFigure(n, os.Stdout))
	}
	return failed
}

// report logs a failed replay and returns 1 for it, 0 otherwise.
func report(what string, err error) int {
	if err != nil {
		logger.Error("replay failed", "replay", what, "error", err.Error())
		return 1
	}
	return 0
}
