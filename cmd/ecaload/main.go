// Command ecaload drives an open-loop ingest load against a running ecad
// daemon and reports the admit→action SLO from the daemon's own /metrics
// exposition:
//
//	ecaload -s http://127.0.0.1:8080 -rate 200 -producers 4 -duration 10s \
//	        -json BENCH_ingest.json
//
// N producers POST travel:booking events at a fixed schedule (interval =
// producers/rate), independent of how fast the daemon answers — the
// open-loop discipline that surfaces queueing delay instead of hiding it
// behind client back-off. A producer that falls behind its schedule drops
// the missed ticks rather than bursting to catch up. 429 responses are
// honoured: the shed event is counted and the producer sleeps the
// advertised Retry-After (bounded) before resuming its schedule.
//
// The daemon's /metrics is scraped before the run and again after the
// engine settles; both expositions must pass obs.LintExposition. The
// report is computed from the server-side deltas — events_admitted_total,
// events_shed_total and the event_e2e_seconds histogram (admit→action,
// completed instances only) — so it reflects what the daemon measured,
// not client-side RTTs. When the endpoint serves /cluster/metrics (a
// clustered deployment) that exposition is linted too.
//
// The default event is a booking by "John Doe" to Paris, which completes
// the -travel car-rental rule end to end and therefore exercises every
// lifecycle stage; point -person/-from/-to elsewhere to load a different
// rule set.
//
// With -batch N every POST carries N events as an NDJSON body (one JSON
// string of XML per line, Content-Type application/x-ndjson) admitted by
// the daemon under a single journal fsync and sequencing step. -rate stays
// events/second: the POST schedule slows down by the batch factor, so a
// batched and an unbatched run at the same -rate offer the daemon the same
// event load. -series labels the JSON report so multiple runs can be
// archived side by side; -baseline FILE -min-speedup X fails the run
// (exit 1) unless this run's admitted events/second is at least X times
// the baseline report's — the CI regression gate for batched ingest.
//
// The exit status is non-zero when a lint fails, the daemon admitted
// nothing, no rule instance completed (zero e2e observations), or the
// -min-speedup gate fails.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/domain/travel"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// maxRetryAfter bounds how long a producer honours a 429's Retry-After
// before resuming its schedule, so a misconfigured daemon cannot stall
// the run.
const maxRetryAfter = 2 * time.Second

// Report is the BENCH_ingest.json document: the daemon-side view of one
// ecaload run.
type Report struct {
	Series          string   `json:"series,omitempty"`
	Endpoint        string   `json:"endpoint"`
	TargetRate      float64  `json:"target_rate_per_second"`
	BatchSize       int      `json:"batch_size"`
	Producers       int      `json:"producers"`
	DurationSeconds float64  `json:"duration_seconds"`
	Sent            int64    `json:"sent"`
	Admitted        int64    `json:"admitted"`
	Shed            int64    `json:"shed"`
	ClientErrors    int64    `json:"client_errors"`
	EventsPerSecond float64  `json:"events_per_second"`
	ShedRate        float64  `json:"shed_rate"`
	Latency         *Latency `json:"admit_to_action_latency_seconds"`
	MetricsLint     bool     `json:"metrics_lint_clean"`
	ClusterLint     *bool    `json:"cluster_metrics_lint_clean,omitempty"`
}

// Latency summarises the event_e2e_seconds delta accumulated during the
// run: admission-timestamp to action-ack, as measured by the engine.
type Latency struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func main() {
	var (
		server    = flag.String("s", defaultEndpoint(os.Getenv), "ecad base URL (default honours $ECA_ENDPOINT)")
		rate      = flag.Float64("rate", 100, "target events/second across all producers")
		producers = flag.Int("producers", 4, "concurrent producer goroutines")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		settle    = flag.Duration("settle", 5*time.Second, "how long to wait for in-flight instances to drain after the load stops")
		jsonPath  = flag.String("json", "", "write the run report as JSON to this file (e.g. BENCH_ingest.json)")
		person     = flag.String("person", "John Doe", "booking person attribute")
		from       = flag.String("from", "Munich", "booking from attribute")
		to         = flag.String("to", "Paris", "booking to attribute")
		batch      = flag.Int("batch", 1, "events per POST: 1 posts single XML documents, N>1 posts NDJSON batches")
		series     = flag.String("series", "", "label stamped into the JSON report (e.g. batched, unbatched)")
		baseline   = flag.String("baseline", "", "baseline report JSON to compare admitted events/second against")
		minSpeedup = flag.Float64("min-speedup", 0, "fail unless events/second >= this multiple of the -baseline rate (0 disables the gate)")
	)
	flag.StringVar(&tenantID, "tenant", "", "tenant whose rule space receives the load (empty = daemon default)")
	flag.Parse()
	if *rate <= 0 || *producers <= 0 || *batch < 1 {
		fmt.Fprintln(os.Stderr, "ecaload: -rate, -producers and -batch must be positive")
		os.Exit(2)
	}
	if *minSpeedup > 0 && *baseline == "" {
		fmt.Fprintln(os.Stderr, "ecaload: -min-speedup needs -baseline")
		os.Exit(2)
	}

	rep, err := run(*server, *rate, *producers, *batch, *duration, *settle, *person, *from, *to)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecaload: %v\n", err)
		os.Exit(1)
	}
	rep.Series = *series
	printSummary(os.Stdout, rep)
	if *jsonPath != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ecaload: %v\n", err)
			os.Exit(1)
		}
	}
	ok := healthy(rep)
	if *baseline != "" {
		base, err := baselineRate(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecaload: -baseline: %v\n", err)
			os.Exit(1)
		}
		speedup := rep.EventsPerSecond / base
		fmt.Printf("speedup vs baseline: %.2fx (baseline %.1f events/sec", speedup, base)
		if *minSpeedup > 0 {
			fmt.Printf(", gate >= %.2fx", *minSpeedup)
		}
		fmt.Println(")")
		if *minSpeedup > 0 && speedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "ecaload: speedup %.2fx below the -min-speedup %.2fx gate\n", speedup, *minSpeedup)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// baselineRate reads the admitted events/second out of a baseline report:
// either a single Report document or the archived {series: [...]} shape,
// preferring the series labelled "unbatched".
func baselineRate(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var multi struct {
		Series []Report `json:"series"`
	}
	if err := json.Unmarshal(data, &multi); err == nil && len(multi.Series) > 0 {
		for _, r := range multi.Series {
			if r.Series == "unbatched" {
				return positiveRate(r)
			}
		}
		return positiveRate(multi.Series[0])
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return 0, err
	}
	return positiveRate(r)
}

func positiveRate(r Report) (float64, error) {
	if r.EventsPerSecond <= 0 {
		return 0, fmt.Errorf("baseline report has no positive events_per_second")
	}
	return r.EventsPerSecond, nil
}

// tenantID scopes the generated load to one tenant's rule space; empty
// addresses the daemon's default tenant.
var tenantID string

// postEvents posts one event (or NDJSON batch) to the daemon, stamped
// with the selected tenant.
func postEvents(client *http.Client, url, contentType, body string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if tenantID != "" {
		req.Header.Set(protocol.TenantHeader, tenantID)
	}
	return client.Do(req)
}

// defaultEndpoint mirrors ecactl: $ECA_ENDPOINT when set, the local
// default otherwise.
func defaultEndpoint(getenv func(string) string) string {
	if ep := strings.TrimSpace(getenv("ECA_ENDPOINT")); ep != "" {
		return strings.TrimRight(ep, "/")
	}
	return "http://127.0.0.1:8080"
}

// healthy reports whether the run proved the pipeline end to end: both
// expositions lint-clean, events actually admitted, instances actually
// completed.
func healthy(rep *Report) bool {
	if !rep.MetricsLint || rep.Admitted == 0 || rep.Latency == nil || rep.Latency.Count == 0 {
		return false
	}
	return rep.ClusterLint == nil || *rep.ClusterLint
}

func run(base string, rate float64, producers, batch int, duration, settle time.Duration, person, from, to string) (*Report, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	before, lintBeforeErr, err := scrapeMetrics(client, base)
	if err != nil {
		return nil, fmt.Errorf("pre-run scrape: %w", err)
	}

	event := travel.Booking(person, from, to).String()
	body, contentType := event, "application/xml"
	if batch > 1 {
		// One POST = one NDJSON batch of `batch` events; -rate still counts
		// events, so the POST schedule stretches by the batch factor.
		line, err := json.Marshal(event)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for i := 0; i < batch; i++ {
			b.Write(line)
			b.WriteByte('\n')
		}
		body, contentType = b.String(), "application/x-ndjson"
	}
	var sent, shed, clientErrs atomic.Int64
	interval := time.Duration(float64(producers*batch) / rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Producers start phase-shifted so the aggregate schedule is
			// evenly spaced, not N simultaneous bursts.
			next := start.Add(time.Duration(p) * interval / time.Duration(producers))
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				if wait := next.Sub(now); wait > 0 {
					time.Sleep(wait)
				} else if -wait > interval {
					// Fell behind the open-loop schedule: drop the missed
					// ticks instead of bursting.
					next = now
				}
				next = next.Add(interval)
				sent.Add(int64(batch))
				resp, err := postEvents(client, base+"/events", contentType, body)
				if err != nil {
					clientErrs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(int64(batch))
					time.Sleep(retryAfter(resp))
				case resp.StatusCode < 200 || resp.StatusCode > 299:
					clientErrs.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, lintAfterErr, err := awaitSettle(client, base, before, settle)
	if err != nil {
		return nil, fmt.Errorf("post-run scrape: %w", err)
	}

	rep := &Report{
		Endpoint:        base,
		TargetRate:      rate,
		BatchSize:       batch,
		Producers:       producers,
		DurationSeconds: elapsed.Seconds(),
		Sent:            sent.Load(),
		Shed:            shed.Load(),
		ClientErrors:    clientErrs.Load(),
		MetricsLint:     lintBeforeErr == nil && lintAfterErr == nil,
	}
	if lintBeforeErr != nil {
		fmt.Fprintf(os.Stderr, "ecaload: pre-run /metrics lint: %v\n", lintBeforeErr)
	}
	if lintAfterErr != nil {
		fmt.Fprintf(os.Stderr, "ecaload: post-run /metrics lint: %v\n", lintAfterErr)
	}
	rep.Admitted = int64(after.Sum("events_admitted_total", nil) - before.Sum("events_admitted_total", nil))
	serverShed := int64(after.Sum("events_shed_total", nil) - before.Sum("events_shed_total", nil))
	if serverShed > rep.Shed {
		// The daemon's count is authoritative (a 429 lost to a client
		// timeout is still a shed event).
		rep.Shed = serverShed
	}
	rep.EventsPerSecond = float64(rep.Admitted) / elapsed.Seconds()
	if total := rep.Admitted + rep.Shed; total > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(total)
	}
	if d := after.HistogramDist("event_e2e_seconds", nil).Sub(before.HistogramDist("event_e2e_seconds", nil)); d.Count > 0 {
		rep.Latency = &Latency{
			Count: d.Count,
			Mean:  d.Mean(),
			P50:   d.Quantile(0.50),
			P95:   d.Quantile(0.95),
			P99:   d.Quantile(0.99),
		}
	}
	rep.ClusterLint = lintClusterMetrics(client, base)
	return rep, nil
}

// retryAfter reads a 429's Retry-After seconds, bounded so the schedule
// resumes promptly even if the daemon advertises a long back-off.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 1 {
		secs = 1
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// scrapeMetrics fetches and parses /metrics; the lint verdict is
// returned separately so a lint violation is reported without aborting
// the run.
func scrapeMetrics(client *http.Client, base string) (*obs.Exposition, error, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	lintErr := obs.LintExposition(bytes.NewReader(body))
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		return nil, lintErr, err
	}
	return exp, lintErr, nil
}

// awaitSettle polls /metrics until the e2e completion count stops
// growing and the admission/worker queues are empty (or the budget runs
// out), so the final scrape covers instances still in flight when the
// load stopped.
func awaitSettle(client *http.Client, base string, before *obs.Exposition, budget time.Duration) (*obs.Exposition, error, error) {
	deadline := time.Now().Add(budget)
	var lastCount int64 = -1
	for {
		exp, lintErr, err := scrapeMetrics(client, base)
		if err != nil {
			return nil, lintErr, err
		}
		count := exp.HistogramDist("event_e2e_seconds", nil).Count
		pending, _ := exp.Value("events_pending", nil)
		// engine_queue_depth carries a tenant label (one child gauge per
		// rule space), so the drained signal is the sum over all tenants.
		queued := exp.Sum("engine_queue_depth", nil)
		if (count == lastCount && pending == 0 && queued == 0) || time.Now().After(deadline) {
			return exp, lintErr, nil
		}
		lastCount = count
		time.Sleep(200 * time.Millisecond)
	}
}

// lintClusterMetrics probes /cluster/metrics: nil when the endpoint is
// not clustered (404), otherwise whether the federated exposition is
// lint-clean.
func lintClusterMetrics(client *http.Client, base string) *bool {
	resp, err := client.Get(base + "/cluster/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	ok := false
	if resp.StatusCode == http.StatusOK {
		if body, err := io.ReadAll(resp.Body); err == nil {
			if lintErr := obs.LintExposition(bytes.NewReader(body)); lintErr == nil {
				ok = true
			} else {
				fmt.Fprintf(os.Stderr, "ecaload: /cluster/metrics lint: %v\n", lintErr)
			}
		}
	}
	return &ok
}

func printSummary(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "ecaload %s: %d sent, %d admitted (%.1f events/sec), %d shed (%.1f%%), %d client errors\n",
		rep.Endpoint, rep.Sent, rep.Admitted, rep.EventsPerSecond, rep.Shed, rep.ShedRate*100, rep.ClientErrors)
	if rep.Latency != nil {
		fmt.Fprintf(w, "admit→action latency: %d completions, mean %s, p50 %s, p95 %s, p99 %s\n",
			rep.Latency.Count, fmtSec(rep.Latency.Mean), fmtSec(rep.Latency.P50),
			fmtSec(rep.Latency.P95), fmtSec(rep.Latency.P99))
	} else {
		fmt.Fprintln(w, "admit→action latency: no completed instances observed")
	}
	lint := "clean"
	if !rep.MetricsLint {
		lint = "VIOLATIONS"
	}
	fmt.Fprintf(w, "/metrics lint: %s", lint)
	if rep.ClusterLint != nil {
		lint = "clean"
		if !*rep.ClusterLint {
			lint = "VIOLATIONS"
		}
		fmt.Fprintf(w, ", /cluster/metrics lint: %s", lint)
	}
	fmt.Fprintln(w)
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}
