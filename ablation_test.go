// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - projecting "only the relevant bindings" onto the wire (Section 4.4)
//     vs. shipping the full instance relation;
//   - opaque per-tuple mediation vs. framework-aware batch dispatch as the
//     input relation grows (the crossover is at exactly one tuple);
//   - the hash join vs. a naive nested-loop join;
//   - asynchronous instance evaluation (worker pool) vs. synchronous, when
//     the component services are remote.
package eca_test

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/bindings"
	"repro/internal/domain/travel"
	"repro/internal/engine"
	"repro/internal/grh"
	"repro/internal/protocol"
	"repro/internal/ruleml"
	"repro/internal/services"
	"repro/internal/system"
	"repro/internal/xmltree"
)

// BenchmarkAblationProjection: dispatching a query whose expression uses
// one variable, with the instance relation carrying 8 variables. Projection
// sends 1 column; without it the whole relation is marshalled.
func BenchmarkAblationProjection(b *testing.B) {
	store := services.NewDocStore()
	travel.LoadStore(store)
	svc := services.NewXQueryService(store, nil)
	g := grh.New()
	g.Register(grh.Descriptor{Language: services.XQueryNS, FrameworkAware: true, Local: svc})
	srv := httptest.NewServer(services.Handler(svc))
	defer srv.Close()
	gRemote := grh.New()
	gRemote.Register(grh.Descriptor{Language: services.XQueryNS, FrameworkAware: true, Endpoint: srv.URL})

	wide := bindings.NewRelation()
	for i := 0; i < 16; i++ {
		tup := bindings.MustTuple("Person", bindings.Str("John Doe"))
		for v := 0; v < 7; v++ {
			tup[fmt.Sprintf("Pad%d", v)] = bindings.Str(fmt.Sprintf("%d-%d", i, v))
		}
		wide.Add(tup)
	}
	narrow := wide.Project("Person") // what the engine actually sends

	expr := xmltree.NewElement(services.XQueryNS, "query")
	expr.AppendText(`for $c in doc('` + travel.CarsDoc + `')//owner[@name=$Person]/car return $c/model/text()`)
	comp := func(rel *bindings.Relation) grh.Component {
		return grh.Component{
			Rule:     "r",
			Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "q", Language: services.XQueryNS, Expression: expr},
			Bindings: rel,
		}
	}
	for _, c := range []struct {
		name string
		g    *grh.GRH
		rel  *bindings.Relation
	}{
		{"projected/local", g, narrow},
		{"full/local", g, wide},
		{"projected/http", gRemote, narrow},
		{"full/http", gRemote, wide},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.g.Dispatch(protocol.Query, comp(c.rel)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOpaqueCrossover: framework-aware batch dispatch (one
// POST regardless of tuples) vs. opaque mediation (one GET per tuple).
func BenchmarkAblationOpaqueCrossover(b *testing.B) {
	store := services.NewDocStore()
	travel.LoadStore(store)
	aware := httptest.NewServer(services.Handler(services.NewXQueryService(store, nil)))
	defer aware.Close()
	opaque := httptest.NewServer(services.NewOpaqueXMLStore(xmltree.MustParse(travel.ClassesXML), nil))
	defer opaque.Close()
	g := grh.New()
	g.Register(grh.Descriptor{Language: services.XQueryNS, FrameworkAware: true, Endpoint: aware.URL})

	expr := xmltree.NewElement(services.XQueryNS, "query")
	expr.AppendText(`for $e in doc('` + travel.CarsDoc + `')//owner[@name=$OwnCar] return $e/@name`)
	for _, n := range []int{1, 2, 4, 8} {
		rel := bindings.NewRelation()
		for i := 0; i < n; i++ {
			rel.Add(bindings.MustTuple("OwnCar", bindings.Str(fmt.Sprintf("Car%d", i))))
		}
		b.Run(fmt.Sprintf("aware/tuples=%d", n), func(b *testing.B) {
			c := grh.Component{
				Rule:     "r",
				Comp:     ruleml.Component{Kind: ruleml.QueryComponent, ID: "q", Language: services.XQueryNS, Expression: expr},
				Bindings: rel,
			}
			for i := 0; i < b.N; i++ {
				if _, err := g.Dispatch(protocol.Query, c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("opaque/tuples=%d", n), func(b *testing.B) {
			c := grh.Component{
				Rule: "r",
				Comp: ruleml.Component{
					Kind: ruleml.QueryComponent, ID: "q", Opaque: true,
					Language: "raw", Service: opaque.URL,
					Text: `//entry[@model='$OwnCar']/@class`,
				},
				Bindings: rel,
			}
			for i := 0; i < b.N; i++ {
				if _, err := g.Dispatch(protocol.Query, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// naiveJoin is the O(|R|·|S|) nested-loop join the hash join replaces.
func naiveJoin(r, s *bindings.Relation) *bindings.Relation {
	out := bindings.NewRelation()
	for _, t := range r.Tuples() {
		for _, u := range s.Tuples() {
			if t.Compatible(u) {
				out.Add(t.Merge(u))
			}
		}
	}
	return out
}

// BenchmarkAblationJoinAlgorithm: hash join vs. nested loop.
func BenchmarkAblationJoinAlgorithm(b *testing.B) {
	mk := func(n int, payload string) *bindings.Relation {
		r := bindings.NewRelation()
		for i := 0; i < n; i++ {
			r.Add(bindings.MustTuple(
				"K", bindings.Str(fmt.Sprintf("k%d", i%(n/2+1))),
				payload, bindings.Str(fmt.Sprintf("v%d", i)),
			))
		}
		return r
	}
	for _, n := range []int{100, 1000} {
		r, s := mk(n, "A"), mk(n, "B")
		b.Run(fmt.Sprintf("hash/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.Join(s)
			}
		})
		b.Run(fmt.Sprintf("nested/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naiveJoin(r, s)
			}
		})
	}
}

// BenchmarkAblationAsyncWorkers: end-to-end firings over HTTP services,
// synchronous vs. worker-pool engines. Events are injected concurrently so
// the pool can overlap HTTP round trips.
func BenchmarkAblationAsyncWorkers(b *testing.B) {
	for _, workers := range []int{0, 8} {
		name := "sync"
		if workers > 0 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			sc, cleanup, err := travel.NewScenario(system.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer cleanup()
			srv := httptest.NewServer(sc.Mux(xmltree.MustParse(travel.ClassesXML), travel.Namespaces()))
			defer srv.Close()
			if err := sc.Distribute(srv.URL); err != nil {
				b.Fatal(err)
			}
			eng := sc.Engine
			if workers > 0 {
				eng = engine.New(sc.GRH, engine.WithWorkers(workers))
				deliver := &services.Deliverer{Local: eng.OnDetection}
				matcher := services.NewEventMatcher(sc.Stream, deliver)
				defer matcher.Close()
				if err := sc.GRH.Register(grh.Descriptor{
					Language:       services.MatcherNS,
					Kinds:          []ruleml.ComponentKind{ruleml.EventComponent},
					FrameworkAware: true,
					Local:          matcher,
				}); err != nil {
					b.Fatal(err)
				}
				rule, err := ruleml.ParseString(travel.RuleXML(sc.StoreURL, sc.XQueryURL))
				if err != nil {
					b.Fatal(err)
				}
				rule.ID = "car-rental-async"
				if err := eng.Register(rule); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Book("John Doe", "Munich", "Paris")
			}
			eng.Wait()
		})
	}
}
