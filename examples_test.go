package eca_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program and checks its key output
// markers, guarding the documented deliverables against bitrot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs subprocesses")
	}
	cases := map[string][]string{
		"./examples/quickstart": {
			`sensor="boiler-2"`,
			"2 fired, 1 filtered out",
		},
		"./examples/carrental": {
			"John Doe books a flight",
			`ownCar="VW Passat" class="B" car="Opel Astra"`,
			"after query[3]: 1 tuple(s)",
		},
		"./examples/composite": {
			`retention-offer xmlns:ns1="http://example.org/airline" person="John"`,
			`reminder xmlns:ns1="http://example.org/airline" person="Tom"`,
		},
		"./examples/federation": {
			`SHIP`,
			`supplier="globex"`,
			"1 fired, 1 eliminated",
		},
		"./examples/extension": {
			`lock-account xmlns:ns1="http://example.org/security" user="mallory"`,
			"1 fired",
		},
	}
	for pkg, wants := range cases {
		pkg, wants := pkg, wants
		t.Run(strings.TrimPrefix(pkg, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", pkg, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output lacks %q:\n%s", pkg, want, out)
				}
			}
		})
	}
}
