package eca_test

import (
	"sync"
	"testing"

	"repro/internal/domain/travel"
	"repro/internal/system"
)

// TestConcurrentBookings publishes bookings from many goroutines through
// the complete car-rental scenario; run with -race this exercises the
// engine, GRH, services and stores under contention.
func TestConcurrentBookings(t *testing.T) {
	sc, cleanup, err := travel.NewScenario(system.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	const goroutines = 8
	const perG = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sc.Book("John Doe", "Munich", "Paris")
			}
		}()
	}
	wg.Wait()
	want := goroutines * perG
	if got := len(sc.Notifier.Sent()); got != want {
		t.Fatalf("notifications = %d, want %d", got, want)
	}
	st := sc.Engine.Stats()
	if st.InstancesCreated != want || st.InstancesCompleted != want {
		t.Fatalf("stats = %+v", st)
	}
}
