package eca_test

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/xmltree"
)

// TestDurableStoreKillAndRestart is the crash-recovery smoke test: it
// boots the real ecad binary with -data-dir, registers a rule through
// ecactl, SIGKILLs the daemon mid-flight, injects an orphaned
// (accepted-but-never-dispatched) event directly into the journal, and
// restarts over the same data dir. The restarted daemon must list the
// rule, replay the orphan into a completed instance, and expose the
// recovery counters on /metrics and the store section on /healthz.
//
// Set ECA_E2E_DATADIR to pin the data dir to a known path (CI uses this
// to archive the journal as an artifact); by default a temp dir is used.
func TestDurableStoreKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	ecad := filepath.Join(dir, "ecad")
	ecactl := filepath.Join(dir, "ecactl")
	for bin, pkg := range map[string]string{ecad: "./cmd/ecad", ecactl: "./cmd/ecactl"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	dataDir := os.Getenv("ECA_E2E_DATADIR")
	if dataDir == "" {
		dataDir = filepath.Join(dir, "data")
	} else {
		// A pinned dir may carry state from an earlier run; start clean so
		// the recovery counters below are deterministic.
		if err := os.RemoveAll(dataDir); err != nil {
			t.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr

	startDaemon := func() *exec.Cmd {
		t.Helper()
		daemon := exec.Command(ecad, "-addr", addr, "-data-dir", dataDir, "-fsync", "always", "-log-format", "json")
		daemon.Stdout = os.Stderr
		daemon.Stderr = os.Stderr
		if err := daemon.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/engine/stats")
			if err == nil {
				resp.Body.Close()
				return daemon
			}
			if time.Now().After(deadline) {
				daemon.Process.Kill()
				daemon.Wait()
				t.Fatal("ecad did not come up")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// First life: register a rule, confirm it is listed, then die hard.
	daemon := startDaemon()
	ruleFile := filepath.Join(dir, "rule.xml")
	ruleXML := `<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml" xmlns:t="http://t/" id="survivor">
	  <eca:event><t:ping x="$X"/></eca:event>
	  <eca:action><t:pong x="$X"/></eca:action>
	</eca:rule>`
	if err := os.WriteFile(ruleFile, []byte(ruleXML), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(ecactl, "-s", base, "register", ruleFile).CombinedOutput(); err != nil {
		t.Fatalf("ecactl register: %v\n%s", err, out)
	}
	if _, body := get("/engine/rules?format=ids"); !strings.Contains(body, "survivor") {
		t.Fatalf("rule not listed before crash: %q", body)
	}
	if err := daemon.Process.Kill(); err != nil { // SIGKILL: no shutdown hooks run
		t.Fatal(err)
	}
	daemon.Wait()

	// While the daemon is dead, plant an orphaned event: journaled as
	// accepted but never acked, exactly what a crash between accept and
	// dispatch leaves behind.
	st, err := store.Open(dataDir, store.Options{Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := xmltree.ParseString(`<t:ping xmlns:t="http://t/" x="7"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendEvent(ev); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: same flags, same data dir.
	daemon = startDaemon()
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	if _, body := get("/engine/rules?format=ids"); !strings.Contains(body, "survivor") {
		t.Fatalf("rule did not survive restart: %q", body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, stats := get("/engine/stats")
		if strings.Contains(stats, "instances_completed 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphaned event never completed an instance: %q", stats)
		}
		time.Sleep(50 * time.Millisecond)
	}

	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"store_recovery_rules_total 1", "store_recovery_events_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	code, health := get("/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	var h struct {
		Store *store.Health `json:"store"`
	}
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, health)
	}
	if h.Store == nil || h.Store.RecoveredRules != 1 || h.Store.RecoveredEvents != 1 || h.Store.Fsync != "always" {
		t.Errorf("/healthz store section = %+v", h.Store)
	}
}
