// Package eca is a from-scratch Go implementation of the generic ECA
// (Event-Condition-Action) framework for heterogeneous component languages
// in the Semantic Web, after Behrends, Fritzen, May and Schubert, "An ECA
// Engine for Deploying Heterogeneous Component Languages in the Semantic
// Web" (EDBT 2006 Workshops).
//
// # Architecture
//
// A rule ON event AND knowledge IF condition THEN DO action is written in
// an XML markup whose Event, Query, Test and Action components may each use
// a different language, identified by a namespace URI. The ECA engine keeps
// the global semantics — rule instances as sets of tuples of variable
// bindings, natural joins between components — while a Generic Request
// Handler (GRH) mediates between the engine and per-language services:
//
//	ECA engine ── GRH ──┬── atomic event matcher   (event)
//	                    ├── SNOOP detection        (event, composite)
//	                    ├── XQuery-lite            (query, functional)
//	                    ├── Datalog                (query, LP-style)
//	                    ├── raw HTTP XML nodes     (query, framework-unaware)
//	                    ├── test evaluator         (test)
//	                    └── action executors       (action)
//
// Every service runs either in-process or behind a real HTTP endpoint
// speaking the eca:request / log:answers wire protocol.
//
// # Quickstart
//
//	sys, _ := eca.NewLocal(eca.Config{})
//	rule, _ := eca.ParseRule(ruleXML)
//	sys.Engine.Register(rule)
//	sys.Stream.Publish(eca.NewEvent(payload))
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory.
package eca

import (
	"repro/internal/bindings"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/ruleml"
	"repro/internal/system"
	"repro/internal/xmltree"
)

// System is a wired deployment: engine, GRH and all component services.
type System = system.System

// Config parameterizes a System (Datalog rulebase, namespaces, tracing).
type Config = system.Config

// Notification is a message sent by the domain action executor.
type Notification = system.Notification

// Rule is a parsed ECA rule.
type Rule = ruleml.Rule

// Event is an event occurrence on the stream.
type Event = events.Event

// Stats are the engine's activity counters.
type Stats = engine.Stats

// Tuple is one tuple of variable bindings.
type Tuple = bindings.Tuple

// Node is a namespace-aware XML node.
type Node = xmltree.Node

// NewLocal wires a complete in-process deployment.
func NewLocal(cfg Config) (*System, error) { return system.NewLocal(cfg) }

// ParseRule parses an eca:rule document from XML source.
func ParseRule(src string) (*Rule, error) { return ruleml.ParseString(src) }

// ParseXML parses an XML document (events, rule files, data documents).
func ParseXML(src string) (*Node, error) { return xmltree.ParseString(src) }

// NewEvent wraps an XML payload as an event occurrence.
func NewEvent(payload *Node) Event { return events.New(payload) }

// ParseDatalog parses a Datalog rulebase for Config.Datalog (the LP-style
// query service's knowledge base).
func ParseDatalog(src string) (*datalog.Program, error) { return datalog.Parse(src) }
