package eca_test

import (
	"fmt"
	"testing"

	eca "repro"
	"repro/internal/protocol"
	"repro/internal/xmltree"
)

// TestSoakManyRulesManyEvents pushes 5 000 events through 100 rules (half
// matching, half not) and checks totals — a guard against accidental
// quadratic state growth in the matcher, the engine bookkeeping or the
// binding relations.
func TestSoakManyRulesManyEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	sys, err := eca.NewLocal(eca.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const rules = 100
	for i := 0; i < rules; i++ {
		src := fmt.Sprintf(`<eca:rule xmlns:eca="%s" xmlns:t="http://t/" id="r%03d">
		  <eca:event><t:e%d x="$X"/></eca:event>
		  <eca:test>$X mod 2 = 0</eca:test>
		  <eca:action><t:a x="$X"/></eca:action>
		</eca:rule>`, protocol.ECANS, i, i%10) // 10 distinct event names
		rule, err := eca.ParseRule(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Engine.Register(rule); err != nil {
			t.Fatal(err)
		}
	}
	const eventsN = 5000
	for i := 0; i < eventsN; i++ {
		name := fmt.Sprintf("e%d", i%20) // half the names match no rule
		e := xmltree.NewElement("http://t/", name)
		e.SetAttr("", "x", fmt.Sprint(i))
		sys.Stream.Publish(eca.NewEvent(e))
	}
	st := sys.Engine.Stats()
	// Each matching event (name e0..e9, 2500 of them) triggers 10 rules.
	wantInstances := 2500 * 10
	if st.InstancesCreated != wantInstances {
		t.Fatalf("instances = %d, want %d", st.InstancesCreated, wantInstances)
	}
	// Even x fires, odd dies at the test; events alternate parity per name
	// bucket, so exactly half fire.
	if st.InstancesCompleted != wantInstances/2 || st.InstancesDied != wantInstances/2 {
		t.Fatalf("completed/died = %d/%d, want %d/%d",
			st.InstancesCompleted, st.InstancesDied, wantInstances/2, wantInstances/2)
	}
	if got := len(sys.Notifier.Sent()); got != wantInstances/2 {
		t.Fatalf("notifications = %d", got)
	}
}
